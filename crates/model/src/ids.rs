//! Core cellular identifiers: MCC, MNC, PLMN, IMSI, IMEI and TAC.
//!
//! Identifiers are stored in compact numeric form but parse from / display
//! as their standard digit-string representation. Construction is validated:
//! a value of these types is always well-formed, so downstream code never
//! re-checks.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

fn parse_digits(s: &str) -> Result<u64, ParseError> {
    if s.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut v: u64 = 0;
    for (i, b) in s.bytes().enumerate() {
        if !b.is_ascii_digit() {
            return Err(ParseError::NonDigit { offset: i });
        }
        v = v * 10 + (b - b'0') as u64;
    }
    Ok(v)
}

/// Mobile Country Code: a 3-digit code in `200..=799` identifying the
/// country a PLMN belongs to (ITU E.212 geographic range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Mcc(u16);

impl Mcc {
    /// Creates an MCC, validating the E.212 geographic range `200..=799`.
    pub const fn new(value: u16) -> Result<Self, ParseError> {
        if value >= 200 && value <= 799 {
            Ok(Mcc(value))
        } else {
            Err(ParseError::OutOfRange {
                what: "MCC",
                allowed: "200..=799",
            })
        }
    }

    /// Numeric value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Mcc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03}", self.0)
    }
}

impl FromStr for Mcc {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s.len() != 3 {
            return Err(ParseError::BadLength {
                what: "MCC",
                expected: "3 digits",
                found: s.len(),
            });
        }
        Mcc::new(parse_digits(s)? as u16)
    }
}

/// Mobile Network Code: a 2- or 3-digit code identifying an operator within
/// a country. The digit count is significant (`05` ≠ `005`), so it is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mnc {
    value: u16,
    digits: u8,
}

impl Mnc {
    /// Creates a 2-digit MNC (`00`–`99`), the European convention.
    pub const fn new2(value: u16) -> Result<Self, ParseError> {
        if value <= 99 {
            Ok(Mnc { value, digits: 2 })
        } else {
            Err(ParseError::OutOfRange {
                what: "2-digit MNC",
                allowed: "0..=99",
            })
        }
    }

    /// Creates a 3-digit MNC (`000`–`999`), the North-American convention.
    pub const fn new3(value: u16) -> Result<Self, ParseError> {
        if value <= 999 {
            Ok(Mnc { value, digits: 3 })
        } else {
            Err(ParseError::OutOfRange {
                what: "3-digit MNC",
                allowed: "0..=999",
            })
        }
    }

    /// Numeric value.
    pub const fn value(self) -> u16 {
        self.value
    }

    /// Number of digits (2 or 3) in the canonical string form.
    pub const fn digits(self) -> u8 {
        self.digits
    }
}

impl fmt::Display for Mnc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.digits == 2 {
            write!(f, "{:02}", self.value)
        } else {
            write!(f, "{:03}", self.value)
        }
    }
}

impl FromStr for Mnc {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        let v = parse_digits(s)? as u16;
        match s.len() {
            2 => Mnc::new2(v),
            3 => Mnc::new3(v),
            n => Err(ParseError::BadLength {
                what: "MNC",
                expected: "2 or 3 digits",
                found: n,
            }),
        }
    }
}

/// A Public Land Mobile Network identifier: the MCC-MNC pair that names one
/// operator network (e.g. `214-07`).
///
/// PLMNs appear in three roles throughout the reproduction: the SIM's home
/// network, the visited network a device is attached to, and the operator
/// part of an APN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Plmn {
    /// Country code.
    pub mcc: Mcc,
    /// Network code.
    pub mnc: Mnc,
}

impl Plmn {
    /// Creates a PLMN from parts.
    pub const fn new(mcc: Mcc, mnc: Mnc) -> Self {
        Plmn { mcc, mnc }
    }

    /// Convenience constructor from raw numbers with a 2-digit MNC.
    ///
    /// Panics on out-of-range input; intended for registry tables and tests
    /// where values are literals.
    pub const fn of(mcc: u16, mnc: u16) -> Self {
        let mcc = match Mcc::new(mcc) {
            Ok(m) => m,
            Err(_) => panic!("invalid literal MCC"),
        };
        let mnc = match Mnc::new2(mnc) {
            Ok(m) => m,
            Err(_) => panic!("invalid literal 2-digit MNC"),
        };
        Plmn { mcc, mnc }
    }

    /// Packs the PLMN into a sortable `u32` key (`mcc * 1000 + mnc`,
    /// 3-digit MNCs offset to avoid colliding with 2-digit ones).
    pub const fn packed(self) -> u32 {
        let mnc_key = if self.mnc.digits() == 2 {
            self.mnc.value() as u32
        } else {
            // 3-digit MNCs live in 100..=1099 of the key space so that
            // e.g. MNC "05" (5) and "005" (105) remain distinct.
            self.mnc.value() as u32 + 100
        };
        self.mcc.value() as u32 * 2000 + mnc_key
    }
}

impl fmt::Display for Plmn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.mcc, self.mnc)
    }
}

impl FromStr for Plmn {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        let (mcc, mnc) = s.split_once('-').ok_or(ParseError::BadApn {
            reason: "PLMN must be MCC-MNC",
        })?;
        Ok(Plmn::new(mcc.parse()?, mnc.parse()?))
    }
}

/// International Mobile Subscriber Identity: MCC + MNC + up-to-10-digit
/// MSIN, at most 15 digits total. Identifies a SIM.
///
/// ```
/// use wtr_model::ids::{Imsi, Plmn};
///
/// let imsi: Imsi = "204040123456789".parse().unwrap();
/// assert_eq!(imsi.plmn(), Plmn::of(204, 4));
/// assert_eq!(imsi.msin(), 123_456_789);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imsi {
    plmn: Plmn,
    msin: u64,
}

/// Maximum MSIN value: 10 decimal digits.
const MSIN_MAX: u64 = 9_999_999_999;

impl Imsi {
    /// Creates an IMSI from its home PLMN and subscriber number.
    pub const fn new(plmn: Plmn, msin: u64) -> Result<Self, ParseError> {
        if msin <= MSIN_MAX {
            Ok(Imsi { plmn, msin })
        } else {
            Err(ParseError::OutOfRange {
                what: "MSIN",
                allowed: "at most 10 digits",
            })
        }
    }

    /// The SIM's home network.
    pub const fn plmn(self) -> Plmn {
        self.plmn
    }

    /// The subscriber part.
    pub const fn msin(self) -> u64 {
        self.msin
    }

    /// Packs the IMSI into a unique `u64` for hashing/anonymization.
    pub const fn packed(self) -> u64 {
        (self.plmn.packed() as u64) * 10_000_000_000 + self.msin
    }
}

impl fmt::Display for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // MSIN is rendered with enough digits to keep the full string
        // unambiguous; 10 digits is the registry convention here.
        write!(f, "{}{}{:010}", self.plmn.mcc, self.plmn.mnc, self.msin)
    }
}

impl FromStr for Imsi {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s.len() < 6 || s.len() > 15 {
            return Err(ParseError::BadLength {
                what: "IMSI",
                expected: "6..=15 digits",
                found: s.len(),
            });
        }
        let mcc: Mcc = s[..3].parse()?;
        // MNC length is ambiguous from the string alone; this parser uses
        // the European 2-digit convention, which matches every operator in
        // the built-in registry.
        let mnc: Mnc = s[3..5].parse()?;
        let msin = parse_digits(&s[5..])?;
        Imsi::new(Plmn::new(mcc, mnc), msin)
    }
}

/// A half-open range of IMSIs within one PLMN, `[start, end)` on the MSIN.
///
/// The paper's UK MNO provisions SMIP smart-meter SIMs from "a dedicate IMSI
/// range" (§4.4); GSMA guidance likewise recommends dedicated IMSI ranges to
/// make outbound M2M traffic recognizable (§1). This type is how both are
/// modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImsiRange {
    /// PLMN the range belongs to.
    pub plmn: Plmn,
    /// First MSIN in the range.
    pub start: u64,
    /// One past the last MSIN in the range.
    pub end: u64,
}

impl ImsiRange {
    /// Creates a range; `start <= end` and both within MSIN bounds.
    pub const fn new(plmn: Plmn, start: u64, end: u64) -> Result<Self, ParseError> {
        if start <= end && end <= MSIN_MAX + 1 {
            Ok(ImsiRange { plmn, start, end })
        } else {
            Err(ParseError::OutOfRange {
                what: "IMSI range",
                allowed: "start <= end <= 10^10",
            })
        }
    }

    /// Whether `imsi` falls inside this range.
    pub fn contains(&self, imsi: Imsi) -> bool {
        imsi.plmn() == self.plmn && imsi.msin() >= self.start && imsi.msin() < self.end
    }

    /// Number of IMSIs in the range.
    pub const fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The `i`-th IMSI of the range, if within bounds.
    pub fn nth(&self, i: u64) -> Option<Imsi> {
        if self.start + i < self.end {
            Some(Imsi::new(self.plmn, self.start + i).expect("range validated"))
        } else {
            None
        }
    }
}

/// Type Allocation Code: the first 8 digits of an IMEI, statically allocated
/// to a device vendor + model (§4.1, footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tac(u32);

impl Tac {
    /// Creates a TAC (8 decimal digits).
    pub const fn new(value: u32) -> Result<Self, ParseError> {
        if value <= 99_999_999 {
            Ok(Tac(value))
        } else {
            Err(ParseError::OutOfRange {
                what: "TAC",
                allowed: "8 digits",
            })
        }
    }

    /// Numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Tac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08}", self.0)
    }
}

impl FromStr for Tac {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s.len() != 8 {
            return Err(ParseError::BadLength {
                what: "TAC",
                expected: "8 digits",
                found: s.len(),
            });
        }
        Tac::new(parse_digits(s)? as u32)
    }
}

/// International Mobile Equipment Identity: TAC (8 digits) + serial number
/// (6 digits) + Luhn check digit. Identifies a physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imei {
    tac: Tac,
    snr: u32,
}

impl Imei {
    /// Creates an IMEI from TAC and 6-digit serial number.
    pub const fn new(tac: Tac, snr: u32) -> Result<Self, ParseError> {
        if snr <= 999_999 {
            Ok(Imei { tac, snr })
        } else {
            Err(ParseError::OutOfRange {
                what: "IMEI serial number",
                allowed: "6 digits",
            })
        }
    }

    /// The vendor/model allocation code.
    pub const fn tac(self) -> Tac {
        self.tac
    }

    /// The per-unit serial number.
    pub const fn snr(self) -> u32 {
        self.snr
    }

    /// Computes the Luhn check digit over the 14 identity digits.
    pub fn check_digit(self) -> u8 {
        let digits = self.identity_digits();
        luhn_check_digit(&digits)
    }

    /// Packs the IMEI identity (without check digit) into a `u64`.
    pub const fn packed(self) -> u64 {
        self.tac.value() as u64 * 1_000_000 + self.snr as u64
    }

    fn identity_digits(self) -> [u8; 14] {
        let mut out = [0u8; 14];
        let mut v = self.packed();
        let mut i = 14;
        while i > 0 {
            i -= 1;
            out[i] = (v % 10) as u8;
            v /= 10;
        }
        out
    }
}

/// Luhn check digit over a digit slice (most-significant first).
fn luhn_check_digit(digits: &[u8]) -> u8 {
    let mut sum: u32 = 0;
    // Walking right-to-left, double every other digit starting with the
    // rightmost identity digit.
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut d = d as u32;
        if i % 2 == 0 {
            d *= 2;
            if d > 9 {
                d -= 9;
            }
        }
        sum += d;
    }
    ((10 - (sum % 10)) % 10) as u8
}

impl fmt::Display for Imei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:06}{}", self.tac, self.snr, self.check_digit())
    }
}

impl FromStr for Imei {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s.len() != 15 {
            return Err(ParseError::BadLength {
                what: "IMEI",
                expected: "15 digits",
                found: s.len(),
            });
        }
        let tac: Tac = s[..8].parse()?;
        let snr = parse_digits(&s[8..14])? as u32;
        let imei = Imei::new(tac, snr)?;
        let found = parse_digits(&s[14..])? as u8;
        let expected = imei.check_digit();
        if found != expected {
            return Err(ParseError::BadCheckDigit { found, expected });
        }
        Ok(imei)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcc_range_enforced() {
        assert!(Mcc::new(214).is_ok());
        assert!(Mcc::new(199).is_err());
        assert!(Mcc::new(800).is_err());
        assert_eq!(Mcc::new(234).unwrap().to_string(), "234");
    }

    #[test]
    fn mcc_parse_requires_three_digits() {
        assert!("21".parse::<Mcc>().is_err());
        assert!("2140".parse::<Mcc>().is_err());
        assert!("21a".parse::<Mcc>().is_err());
        assert_eq!("214".parse::<Mcc>().unwrap().value(), 214);
    }

    #[test]
    fn mnc_digit_count_preserved() {
        let two = Mnc::new2(4).unwrap();
        let three = Mnc::new3(4).unwrap();
        assert_eq!(two.to_string(), "04");
        assert_eq!(three.to_string(), "004");
        assert_ne!(two, three);
        assert_eq!("04".parse::<Mnc>().unwrap(), two);
        assert_eq!("004".parse::<Mnc>().unwrap(), three);
    }

    #[test]
    fn plmn_packed_distinguishes_mnc_widths() {
        let a = Plmn::new(Mcc::new(310).unwrap(), Mnc::new2(5).unwrap());
        let b = Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(5).unwrap());
        assert_ne!(a.packed(), b.packed());
    }

    #[test]
    fn plmn_display_and_parse_roundtrip() {
        let p = Plmn::of(214, 7);
        assert_eq!(p.to_string(), "214-07");
        assert_eq!("214-07".parse::<Plmn>().unwrap(), p);
    }

    #[test]
    fn imsi_roundtrip() {
        let imsi = Imsi::new(Plmn::of(204, 4), 123_456_789).unwrap();
        let s = imsi.to_string();
        assert_eq!(s, "204040123456789");
        assert_eq!(s.parse::<Imsi>().unwrap(), imsi);
    }

    #[test]
    fn imsi_msin_bounds() {
        assert!(Imsi::new(Plmn::of(214, 7), MSIN_MAX).is_ok());
        assert!(Imsi::new(Plmn::of(214, 7), MSIN_MAX + 1).is_err());
    }

    #[test]
    fn imsi_packed_unique_across_plmn() {
        let a = Imsi::new(Plmn::of(214, 7), 1).unwrap();
        let b = Imsi::new(Plmn::of(214, 8), 1).unwrap();
        assert_ne!(a.packed(), b.packed());
    }

    #[test]
    fn imsi_range_membership() {
        let plmn = Plmn::of(234, 30);
        let range = ImsiRange::new(plmn, 1_000, 2_000).unwrap();
        assert_eq!(range.len(), 1_000);
        assert!(!range.is_empty());
        assert!(range.contains(Imsi::new(plmn, 1_000).unwrap()));
        assert!(range.contains(Imsi::new(plmn, 1_999).unwrap()));
        assert!(!range.contains(Imsi::new(plmn, 2_000).unwrap()));
        assert!(!range.contains(Imsi::new(Plmn::of(234, 31), 1_500).unwrap()));
        assert_eq!(range.nth(0).unwrap().msin(), 1_000);
        assert!(range.nth(1_000).is_none());
    }

    #[test]
    fn imei_luhn_check_digit() {
        // Known vector: IMEI 49015420323751? has check digit 8.
        let imei: Imei = "490154203237518".parse().unwrap();
        assert_eq!(imei.tac().to_string(), "49015420");
        assert_eq!(imei.check_digit(), 8);
        assert_eq!(imei.to_string(), "490154203237518");
    }

    #[test]
    fn imei_rejects_bad_check_digit() {
        let err = "490154203237519".parse::<Imei>().unwrap_err();
        assert!(matches!(
            err,
            ParseError::BadCheckDigit {
                expected: 8,
                found: 9
            }
        ));
    }

    #[test]
    fn tac_display_pads_to_eight() {
        assert_eq!(Tac::new(1234).unwrap().to_string(), "00001234");
        assert_eq!("00001234".parse::<Tac>().unwrap().value(), 1234);
        assert!(Tac::new(100_000_000).is_err());
    }

    #[test]
    fn parse_digits_rejects_unicode_and_signs() {
        assert!("２14".parse::<Mcc>().is_err());
        assert!("-14".parse::<Mcc>().is_err());
        assert!("+14".parse::<Mcc>().is_err());
    }
}
