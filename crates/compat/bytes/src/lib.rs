//! Offline stand-in for `bytes`: the `Bytes`/`BytesMut`/`Buf`/`BufMut`
//! subset the `wtr-probes` wire codec uses. `Bytes` is a plain owned
//! buffer (cheap-enough clones via `Arc` are unnecessary at this scale;
//! the codec only moves it around).

use std::sync::Arc;

/// Immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read cursor for the `Buf` impl.
    pos: usize,
}

impl Bytes {
    /// Bytes remaining (from the read cursor to the end).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"hi");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 2 + 1 + 4 + 8);
        let mut two = [0u8; 2];
        b.copy_to_slice(&mut two);
        assert_eq!(&two, b"hi");
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let raw = [1u8, 0, 0, 0, 9];
        let mut s: &[u8] = &raw;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
    }
}
