//! Offline stand-in for `criterion` with the API this workspace's benches
//! use: `Criterion`, `benchmark_group`/`bench_function`/`sample_size`/
//! `finish`, `Bencher::iter`, `black_box` and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! It measures real wall-clock time (warmup, then timed samples) and
//! prints `name  time: [median mean max]` lines, so relative comparisons
//! (e.g. serial vs. parallel pipeline stages) are meaningful. When the
//! binary is run in test mode (`--test`, as `cargo test --benches` does)
//! each bench body executes exactly once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per bench function.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Target warmup time per bench function.
const TARGET_WARMUP: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 30,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self.test_mode, id, 30, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion.test_mode, &full, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    /// Run the routine once, collect no timing.
    Smoke,
    /// Warm up, then collect `samples` timed samples.
    Measure { sample_size: usize },
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
            }
            BenchMode::Measure { sample_size } => {
                // Warmup and per-sample iteration sizing.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                let mut one = Duration::ZERO;
                while warm_start.elapsed() < TARGET_WARMUP || warm_iters == 0 {
                    let t = Instant::now();
                    black_box(routine());
                    one = t.elapsed();
                    warm_iters += 1;
                    if warm_iters >= 1_000 {
                        break;
                    }
                }
                let per_sample = TARGET_MEASURE
                    .checked_div(sample_size as u32)
                    .unwrap_or(Duration::from_millis(10));
                let iters_per_sample = if one.is_zero() {
                    1_000
                } else {
                    (per_sample.as_nanos() / one.as_nanos().max(1)).clamp(1, 100_000) as u64
                };
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    let total = t.elapsed();
                    self.samples.push(total / iters_per_sample as u32);
                }
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        mode: if test_mode {
            BenchMode::Smoke
        } else {
            BenchMode::Measure { sample_size }
        },
        samples: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("{id}: ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let max = *b.samples.last().expect("non-empty");
    println!(
        "{id:<50} time: [{} {} {}]",
        format_duration(median),
        format_duration(mean),
        format_duration(max)
    );
}

/// Declares a group function that runs the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("compat");
        g.sample_size(3);
        g.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        g.finish();
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 1);
    }
}
