//! Offline stand-in for `serde` with the API surface this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework under the same crate name. Instead of
//! serde's visitor architecture, types convert to and from a small
//! self-describing [`Value`] tree; `serde_json` (the sibling stand-in)
//! renders that tree as JSON text. The derive macros in `serde_derive`
//! target exactly these traits.
//!
//! Determinism note: every map impl serializes in a *sorted, stable* key
//! order (`BTreeMap` iteration order; `HashMap` entries are sorted by
//! encoded key first), which is what the pipeline's byte-stability
//! guarantee relies on.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Separator used to join compound (tuple) map keys into a flat string key.
pub const KEY_SEP: char = '\u{1f}';

/// A self-describing value tree (the interchange format between the
/// `Serialize`/`Deserialize` traits and the `serde_json` text codec).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects; insertion order is preserved by the writer.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field by name in an object's entry list.
pub fn __field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Renders a value as a flat string suitable for use as a JSON object key.
///
/// Strings pass through; numbers and booleans use their display form;
/// compound values (tuple keys) join their parts with [`KEY_SEP`].
pub fn key_string(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::I64(i) => i.to_string(),
        Value::U64(u) => u.to_string(),
        Value::F64(f) => f.to_string(),
        Value::Str(s) => s.clone(),
        Value::Array(parts) => {
            let joined: Vec<String> = parts.iter().map(key_string).collect();
            joined.join(&KEY_SEP.to_string())
        }
        Value::Object(pairs) => {
            let joined: Vec<String> = pairs.iter().map(|(_, v)| key_string(v)).collect();
            joined.join(&KEY_SEP.to_string())
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Identity impls for Value itself.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid bool `{s}`"))),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("invalid integer `{s}`")))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let n = u64::deserialize_value(v)?;
        usize::try_from(n).map_err(|_| Error::custom("out of range for usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer too large"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("invalid integer `{s}`")))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}

impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let n = i64::deserialize_value(v)?;
        isize::try_from(n).map_err(|_| Error::custom("out of range for isize"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            // serde_json writes non-finite floats as `null`.
            Value::Null => Ok(f64::NAN),
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid float `{s}`"))),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------------

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---------------------------------------------------------------------------
// References and containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        // Sorted for byte-stable output regardless of hash order.
        let sorted: BTreeSet<&T> = self.iter().collect();
        Value::Array(sorted.iter().map(|x| x.serialize_value()).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| {
                let key = K::deserialize_value(&Value::Str(k.clone()))?;
                Ok((key, V::deserialize_value(val)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        // Sorted by encoded key for byte-stable output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| {
                let key = K::deserialize_value(&Value::Str(k.clone()))?;
                Ok((key, V::deserialize_value(val)?))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples. Serialized as arrays; deserialization additionally accepts a
// KEY_SEP-joined string so tuples can round-trip through map keys.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($n:expr, $( $t:ident : $idx:tt ),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$( self.$idx.serialize_value() ),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $n => {
                        Ok(($( $t::deserialize_value(&items[$idx])?, )+))
                    }
                    Value::Str(s) => {
                        let parts: Vec<&str> = s.split(KEY_SEP).collect();
                        if parts.len() != $n {
                            return Err(Error::custom("tuple key arity mismatch"));
                        }
                        Ok(($( $t::deserialize_value(
                            &Value::Str(parts[$idx].to_owned()))?, )+))
                    }
                    _ => Err(Error::custom("expected tuple")),
                }
            }
        }
    };
}

impl_tuple!(1, A: 0);
impl_tuple!(2, A: 0, B: 1);
impl_tuple!(3, A: 0, B: 1, C: 2);
impl_tuple!(4, A: 0, B: 1, C: 2, D: 3);
impl_tuple!(5, A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(6, A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_keys_flatten_and_roundtrip() {
        let mut m: BTreeMap<(String, String), f64> = BTreeMap::new();
        m.insert(("a".into(), "x".into()), 1.0);
        let v = m.serialize_value();
        let back = BTreeMap::<(String, String), f64>::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn numeric_keys_roundtrip() {
        let mut m: BTreeMap<u64, bool> = BTreeMap::new();
        m.insert(7, true);
        let v = m.serialize_value();
        let back = BTreeMap::<u64, bool>::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_null_roundtrip() {
        let v = Option::<f64>::None.serialize_value();
        assert_eq!(v, Value::Null);
        assert_eq!(Option::<f64>::deserialize_value(&v).unwrap(), None);
    }
}
