//! Offline stand-in for `rand_distr`: the exponential, normal and
//! log-normal distributions used by the simulator's long-tail samplers
//! (`wtr_sim::rng`), implemented by inversion and Box–Muller over the
//! vendored `rand` crate.

use rand::{RngCore, StandardUniform};

/// Distribution sampling interface.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp: lambda must be positive"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion on (0, 1]: avoid ln(0).
        let u = 1.0 - <f64 as StandardUniform>::draw(rng);
        -u.ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal: invalid parameters"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller (one draw per call; the cosine twin is discarded so
        // sampling stays stateless).
        let u1 = 1.0 - <f64 as StandardUniform>::draw(rng);
        let u2 = <f64 as StandardUniform>::draw(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates the distribution over `exp(N(mu, sigma))`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)
                .map_err(|_| ParamError("LogNormal: invalid parameters"))?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close() {
        let mut r = SmallRng::seed_from_u64(1);
        let d = Exp::new(0.5).unwrap(); // mean 2.0
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SmallRng::seed_from_u64(2);
        let d = Normal::new(10.0, 3.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = SmallRng::seed_from_u64(3);
        let d = LogNormal::new(2.0f64.ln(), 1.0).unwrap();
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 2.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
