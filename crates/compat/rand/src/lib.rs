//! Offline stand-in for `rand` (0.9-era API surface used by this
//! workspace): [`rngs::SmallRng`] is xoshiro256++ seeded via SplitMix64,
//! with the [`Rng`], [`RngCore`] and [`SeedableRng`] traits providing
//! `random::<T>()`, `random_range(..)`, `next_u32`/`next_u64` and
//! `seed_from_u64`.
//!
//! The generator is deterministic for a given seed (the repo's simulation
//! determinism only requires *stability*, not any particular stream), and
//! all statistical tests in the workspace assert distributional properties
//! rather than exact draws.

/// Low-level RNG interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample types drawable via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw in `[0, n)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::draw(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty good for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = r.random_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = r.random_range(5.0f64..6.0);
            assert!((5.0..6.0).contains(&x));
            let y = r.random_range(10u64..12);
            assert!((10..12).contains(&y));
            let z = r.random_range(200u16..=799);
            assert!((200..=799).contains(&z));
        }
    }
}
