//! Offline stand-in for `serde_json`: renders the vendored `serde` facade's
//! [`Value`] tree as JSON text and parses JSON text back into it.
//!
//! The writer is deliberately deterministic: object entries are emitted in
//! the order the `Serialize` impls produce them (sorted for maps), and
//! float formatting is stable across runs/threads, which is what the
//! pipeline's byte-stability guarantee builds on.

use std::fmt;
use std::io;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serializes to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Serializes compact JSON into an `io::Write`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    use fmt::Write;
    if f.is_nan() || f.is_infinite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Match ryu-style output for integral floats ("1.0", not "1").
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser (recursive descent).
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00)
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 codepoint.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if s.is_empty() || s == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !float {
            if let Some(stripped) = s.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || s.parse::<i64>().is_ok() {
                    if let Ok(i) = s.parse::<i64>() {
                        return Ok(Value::I64(i));
                    }
                }
            } else if let Ok(u) = s.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{s}`")))
    }
}

// ---------------------------------------------------------------------------
// json! macro (expression values; nested objects must be pre-built values).
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal: nested `{...}` objects,
/// `[...]` arrays, `null`/`true`/`false`, and arbitrary serializable
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut __object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object __object () ($($tt)+));
            __object
        })
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: a token-tree muncher for object
/// bodies so nested `{...}` values work.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // All entries consumed.
    (@object $object:ident () ()) => {};

    // Insert an entry, then continue after the separating comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };

    // Keyword and bracketed values must be matched before the expression
    // fallbacks (an `{...}` object body is not a valid expression).
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Bool(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Bool(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: { $($map:tt)* } $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!({ $($map)* })) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [ $($arr:tt)* ] $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!([ $($arr)* ])) $($rest)*);
    };
    // Expression value followed by more entries.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)) , $($rest)*);
    };
    // Final expression value.
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = json!({
            "a": 1u64,
            "b": [1.5f64, 2.0f64],
            "c": "x\"y",
            "d": Option::<u64>::None,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[1.5,2.0],"c":"x\"y","d":null}"#);
        let back: Value = from_str(&s).unwrap();
        let s2 = to_string(&back).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&-0.25f64).unwrap(), "-0.25");
    }

    #[test]
    fn negative_and_large_numbers() {
        let v: Value = from_str("[-3, 18446744073709551615, 2.5e3]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::I64(-3),
                Value::U64(u64::MAX),
                Value::F64(2500.0)
            ])
        );
    }

    #[test]
    fn pretty_output_shape() {
        let s = to_string_pretty(&json!({ "k": [1u64] })).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
