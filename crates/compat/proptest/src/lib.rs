//! Offline stand-in for `proptest` with the API surface this workspace
//! uses: `proptest! { #[test] fn name(x in strategy) { ... } }`, the
//! `prop_assert*`/`prop_assume` macros, range/tuple/`Just`/regex-string
//! strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `prop::num::*::ANY`, `any::<T>()` and `prop_oneof!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test-name seed, there is **no shrinking**, and
//! checked-in `proptest-regressions` files are not replayed (regression
//! seeds are kept as documentation anchors; fixed bugs get explicit unit
//! tests instead).

/// Deterministic case source and failure plumbing.
pub mod test_runner {
    /// Number of generated cases per property.
    pub const CASES: u32 = 64;

    /// Outcome of a single property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for a named property test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name keeps runs reproducible per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be > 0.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            if n.is_power_of_two() {
                return self.next_u64() & (n - 1);
            }
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].generate(rng)
        }
    }

    /// Boxes a strategy for use in [`Union`].
    pub fn union_box<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    // -- Integer and float ranges ------------------------------------------

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit()
        }
    }

    // -- Tuples ------------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($( $s:ident : $idx:tt ),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    // -- Regex-lite string strategies --------------------------------------

    /// `&str` patterns act as string strategies over a regex subset:
    /// literal chars, `[a-z0-9-]` classes (ranges + literals, `-` last)
    /// and `{n}`/`{m,n}`/`?`/`*`/`+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        // Called with chars[*i] == '['.
        *i += 1;
        assert!(
            chars.get(*i) != Some(&'^'),
            "negated classes unsupported in regex-lite strategies"
        );
        let mut out = Vec::new();
        while *i < chars.len() && chars[*i] != ']' {
            let c = chars[*i];
            if chars.get(*i + 1) == Some(&'-') && chars.get(*i + 2).is_some_and(|e| *e != ']') {
                let end = chars[*i + 2];
                assert!(c <= end, "invalid class range");
                let mut cc = c;
                loop {
                    out.push(cc);
                    if cc == end {
                        break;
                    }
                    cc = char::from_u32(cc as u32 + 1).expect("class range");
                }
                *i += 3;
            } else {
                out.push(c);
                *i += 1;
            }
        }
        assert!(chars.get(*i) == Some(&']'), "unterminated char class");
        *i += 1;
        out
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                *i += 1;
                let mut digits = String::new();
                let mut min = None;
                while let Some(&c) = chars.get(*i) {
                    *i += 1;
                    match c {
                        '0'..='9' => digits.push(c),
                        ',' => {
                            min = Some(digits.parse::<usize>().expect("quantifier"));
                            digits.clear();
                        }
                        '}' => {
                            let n = digits.parse::<usize>().expect("quantifier");
                            return match min {
                                Some(m) => (m, n),
                                None => (n, n),
                            };
                        }
                        other => panic!("bad quantifier char `{other}`"),
                    }
                }
                panic!("unterminated quantifier");
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => parse_class(&chars, &mut i),
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                let k = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[k]);
            }
        }
        out
    }

    // -- any::<T>() --------------------------------------------------------

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// The canonical "anything" strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies (`prop::num::u64::ANY`, ...).
pub mod num {
    macro_rules! any_int_mod {
        ($($m:ident => $t:ty),*) => {$(
            /// Full-range strategies for this integer type.
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Uniform over the full value range.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Uniform over the full value range.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    any_int_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                 i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize);
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::collection::vec`, `prop::bool::ANY`,
    /// `prop::num::u64::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_box($s)),+])
    };
}

/// Declares property tests: each argument is drawn from its strategy for
/// a fixed number of deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __cases: u32 = 0;
                let mut __rejects: u32 = 0;
                while __cases < $crate::test_runner::CASES {
                    let mut __dbg: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(
                            let __value =
                                $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                            __dbg.push(format!("{} = {:?}", stringify!($arg), __value));
                            let $arg = __value;
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __cases += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= 4096,
                                "property `{}`: too many prop_assume rejects ({})",
                                stringify!($name),
                                __why
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "property `{}` failed at case {}: {}\ninputs:\n  {}",
                                stringify!($name),
                                __cases,
                                __msg,
                                __dbg.join("\n  ")
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&"[a-e]{1,3}", &mut rng);
            assert!((1..=3).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='e').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..10, (a, b) in (1u8..=3, prop::bool::ANY)) {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_and_map(xs in prop::collection::vec(0u32..5, 2..6), y in any::<u64>()) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(y, y);
        }

        #[test]
        fn oneof_and_assume(k in prop_oneof![Just(1u8), Just(2u8)], n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_ne!(k, 0);
        }
    }
}
