//! Offline stand-in for `serde_derive`: hand-rolled `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` macros (no `syn`/`quote`) that target the
//! vendored `serde` facade's `serialize_value`/`deserialize_value` traits.
//!
//! Supported shapes — the full set used by this workspace:
//! - named structs, tuple structs (newtype arity-1 serializes transparently,
//!   matching serde_json), unit structs
//! - enums with unit / newtype / tuple / struct variants (externally tagged)
//! - `#[serde(transparent)]` on single-field structs
//! - `#[serde(skip)]` on named fields (omitted on write, `Default` on read)
//!
//! Generics are intentionally unsupported (nothing in the workspace derives
//! on a generic type); the macro emits a compile error if it sees `<` after
//! the type name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

// ---------------------------------------------------------------------------
// Parsed item model.
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if ser {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Consumes leading attributes starting at `i`, returning the idents found
/// inside any `#[serde(...)]` lists (e.g. `transparent`, `skip`).
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(list))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && list.delimiter() == Delimiter::Parenthesis {
                        for t in list.stream() {
                            if let TokenTree::Ident(word) = t {
                                serde_attrs.push(word.to_string());
                            }
                        }
                    }
                }
                *i += 2;
            }
            _ => return serde_attrs,
        }
    }
}

/// Skips an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes a type (or discriminant) expression up to a top-level comma,
/// tracking angle-bracket depth so commas inside generics don't split.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth <= 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `{ field: Type, ... }` contents into named fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in fields: {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name: {other:?}")),
        }
        skip_to_comma(&tokens, &mut i);
        i += 1; // consume the comma (or run off the end)
        fields.push(Field {
            name,
            skip: attrs.iter().any(|a| a == "skip"),
        });
    }
    Ok(fields)
}

/// Counts tuple-struct/tuple-variant fields (top-level comma segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        let _ = take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        skip_to_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&tokens, &mut i);
    let transparent = attrs.iter().any(|a| a == "transparent");
    skip_vis(&tokens, &mut i);
    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde compat derive does not support generic type `{name}`"
            ));
        }
    }
    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input {
        name,
        transparent,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Code generation: Serialize.
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| "0".to_owned());
                format!("::serde::Serialize::serialize_value(&self.{f})")
            } else {
                let mut s = String::from(
                    "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = &f.name;
                    s.push_str(&format!(
                        "__o.push((::std::string::String::from({fname:?}), \
                         ::serde::Serialize::serialize_value(&self.{fname})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__o)");
                s
            }
        }
        Kind::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_owned(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_owned(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let fname = &f.name;
                                format!(
                                    "(::std::string::String::from({fname:?}), \
                                     ::serde::Serialize::serialize_value({fname}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize.
// ---------------------------------------------------------------------------

/// Expression that decodes named fields out of `__o` into a struct literal
/// body (`field: ..., ...`).
fn named_field_inits(type_name: &str, fields: &[Field]) -> String {
    let mut inits = Vec::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push(format!("{fname}: ::std::default::Default::default()"));
        } else {
            inits.push(format!(
                "{fname}: match ::serde::__field(__o, {fname:?}) {{\n\
                 ::std::option::Option::Some(__x) => \
                 ::serde::Deserialize::deserialize_value(__x)?,\n\
                 ::std::option::Option::None => \
                 ::serde::Deserialize::deserialize_value(&::serde::Value::Null).map_err(|_| \
                 ::serde::Error::custom(concat!(\
                 \"{type_name}: missing field `\", {fname:?}, \"`\")))?,\n}}"
            ));
        }
    }
    inits.join(",\n")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| "0".to_owned());
                let mut skips = String::new();
                for other in fields.iter().filter(|x| x.skip) {
                    skips.push_str(&format!(
                        ", {}: ::std::default::Default::default()",
                        other.name
                    ));
                }
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::deserialize_value(__v)? {skips} }})"
                )
            } else {
                let inits = named_field_inits(name, fields);
                format!(
                    "let __o = match __v.as_object() {{\n\
                     ::std::option::Option::Some(__o) => __o,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"{name}: expected object\")),\n}};\n\
                     ::std::result::Result::Ok({name} {{\n{inits}\n}})"
                )
            }
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&__a[{k}])?"))
                .collect();
            format!(
                "let __a = match __v.as_array() {{\n\
                 ::std::option::Option::Some(__a) if __a.len() == {n} => __a,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: expected array of length {n}\")),\n}};\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_variants: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let data_variants: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .collect();

    let mut arms = String::new();
    if !unit_variants.is_empty() {
        let mut inner = String::new();
        for v in &unit_variants {
            let vname = &v.name;
            inner.push_str(&format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
            ));
        }
        arms.push_str(&format!(
            "::serde::Value::Str(__s) => match __s.as_str() {{\n{inner}\
             _ => ::std::result::Result::Err(::serde::Error::custom(\
             \"{name}: unknown variant\")),\n}},\n"
        ));
    }
    if !data_variants.is_empty() {
        let mut inner = String::new();
        for v in &data_variants {
            let vname = &v.name;
            let decode = match &v.kind {
                VariantKind::Unit => unreachable!(),
                VariantKind::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::deserialize_value(__inner)?))"
                ),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::deserialize_value(&__a[{k}])?"))
                        .collect();
                    format!(
                        "{{ let __a = match __inner.as_array() {{\n\
                         ::std::option::Option::Some(__a) if __a.len() == {n} => __a,\n\
                         _ => return ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}::{vname}: expected array of length {n}\")),\n}};\n\
                         ::std::result::Result::Ok({name}::{vname}({})) }}",
                        elems.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let inits = named_field_inits(name, fields);
                    format!(
                        "{{ let __o = match __inner.as_object() {{\n\
                         ::std::option::Option::Some(__o) => __o,\n\
                         _ => return ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}::{vname}: expected object\")),\n}};\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}}) }}",
                    )
                }
            };
            inner.push_str(&format!("{vname:?} => {decode},\n"));
        }
        arms.push_str(&format!(
            "::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
             let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1);\n\
             match __tag.as_str() {{\n{inner}\
             _ => ::std::result::Result::Err(::serde::Error::custom(\
             \"{name}: unknown variant\")),\n}}\n}},\n"
        ));
    }
    format!(
        "match __v {{\n{arms}\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         \"{name}: invalid enum encoding\")),\n}}"
    )
}
