//! The resident server: config validation, the accept loop, routing,
//! and the sealed shutdown path.
//!
//! Routes (one request per connection, `Connection: close`):
//!
//! * `POST /ingest/{tenant}` — upload a catalog body (JSONL/`WTRCAT`).
//!   `200` with a small JSON receipt; `400` with the scanner's
//!   line-numbered error on malformed records; `413` past the body cap.
//! * `GET /report/{tenant}/{table}` — one of [`TABLES`], rendered at
//!   the tenant's current absorb generation (`x-wtr-generation`
//!   header). `404` for unknown tenants or tables.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — seal every tenant's open days, stop accepting,
//!   drain the worker pool and return from [`Server::run`] cleanly.
//!   This is the sanctioned clean-stop path: the workspace forbids
//!   `unsafe`, so no OS signal handler can be installed — `SIGTERM`
//!   keeps its default disposition and skips the seal.

use crate::http::{read_request, write_response, HttpError, Request};
use crate::pool::Pool;
use crate::tenant::{Tenant, TABLES};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Server configuration, as validated from `wtr serve` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080`. Port 0 picks a free one.
    pub addr: String,
    /// Worker threads handling connections; must be at least 1.
    pub workers: usize,
    /// Watermark width in seconds; rounds *up* to whole days (the
    /// catalog's time unit), so any nonzero watermark keeps at least
    /// one trailing day open.
    pub watermark_secs: u64,
    /// Hard cap on request bodies; a larger declared length is `413`.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            watermark_secs: 86_400,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// Rejects configurations the server cannot run with.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
        if self.max_body_bytes == 0 {
            return Err("--max-body-bytes must be at least 1".into());
        }
        Ok(())
    }

    /// The watermark in catalog days (seconds rounded up).
    pub fn watermark_days(&self) -> u32 {
        u32::try_from(self.watermark_secs.div_ceil(86_400)).unwrap_or(u32::MAX)
    }
}

/// Shared server state: the tenant map plus the shutdown latch.
struct State {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    watermark_days: u32,
    max_body_bytes: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl State {
    /// Existing tenant, if any.
    fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("tenants poisoned")
            .get(name)
            .cloned()
    }

    /// Tenant for `name`, created on first ingest.
    fn tenant_or_create(&self, name: &str) -> Arc<Tenant> {
        if let Some(t) = self.tenant(name) {
            return t;
        }
        let mut map = self.tenants.write().expect("tenants poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Tenant::new(name, self.watermark_days))),
        )
    }

    /// Seals every tenant's open days (the shutdown path).
    fn seal_all(&self) {
        let tenants: Vec<Arc<Tenant>> = self
            .tenants
            .read()
            .expect("tenants poisoned")
            .values()
            .cloned()
            .collect();
        for tenant in tenants {
            tenant.seal_all();
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    workers: usize,
}

impl Server {
    /// Validates `config` and binds the listener.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        config.validate()?;
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                tenants: RwLock::new(BTreeMap::new()),
                watermark_days: config.watermark_days(),
                max_body_bytes: config.max_body_bytes,
                shutdown: AtomicBool::new(false),
                addr,
            }),
            workers: config.workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle that can stop this server from another thread (tests).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accepts connections until shutdown, dispatching each to the
    /// worker pool. On shutdown: stops accepting, drains in-flight
    /// requests, seals every tenant's open days, and returns `Ok(())`.
    pub fn run(self) -> io::Result<()> {
        let mut pool = Pool::new(self.workers);
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    pool.execute(move || handle_connection(stream, &state));
                }
                // Transient accept errors (aborted handshakes) are not
                // fatal to a resident server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        pool.join();
        self.state.seal_all();
        Ok(())
    }
}

/// Stops a running server: sets the latch and wakes the blocked
/// `accept()` with a throwaway connection.
pub struct ShutdownHandle {
    state: Arc<State>,
}

impl ShutdownHandle {
    /// Requests shutdown; idempotent.
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
    }
}

fn request_shutdown(state: &State) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // accept() has no timeout; a loopback connect is the wake-up.
    let _ = TcpStream::connect(state.addr);
}

/// Tenant names are path segments and file-name material in clients:
/// keep them to a conservative charset.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// One response: status, extra headers, body.
type Reply = (u16, Vec<(String, String)>, Vec<u8>);

fn reply(status: u16, body: impl Into<Vec<u8>>) -> Reply {
    (status, Vec::new(), body.into())
}

fn handle_connection(mut stream: TcpStream, state: &State) {
    let request = match read_request(&mut stream, state.max_body_bytes) {
        Ok(request) => request,
        Err(HttpError::Bad { status, message }) => {
            let _ = write_response(&mut stream, status, &[], format!("{message}\n").as_bytes());
            return;
        }
        // Socket-level failure: nothing sensible to answer.
        Err(HttpError::Io(_)) => return,
    };
    let (status, headers, body) = route(&request, state);
    let header_refs: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    let _ = write_response(&mut stream, status, &header_refs, &body);
}

fn route(request: &Request, state: &State) -> Reply {
    let segments: Vec<&str> = request
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => reply(200, "ok\n"),
        (_, ["healthz"]) => reply(405, "healthz is GET-only\n"),
        ("POST", ["ingest", tenant]) => {
            if !valid_tenant(tenant) {
                return reply(400, format!("invalid tenant name {tenant:?}\n"));
            }
            let tenant = state.tenant_or_create(tenant);
            match tenant.ingest(&request.body) {
                Ok(receipt) => {
                    let body = format!(
                        "{{\"tenant\":\"{}\",\"rows\":{},\"generation\":{},\"sealed_days\":{}}}\n",
                        tenant.name(),
                        receipt.rows,
                        receipt.generation,
                        receipt.sealed_days
                    );
                    (
                        200,
                        vec![(
                            "x-wtr-generation".to_owned(),
                            receipt.generation.to_string(),
                        )],
                        body.into_bytes(),
                    )
                }
                // The IoError Display carries the scanner's 1-based
                // line number ("line N: …") straight to the client.
                Err(e) => reply(400, format!("{e}\n")),
            }
        }
        (_, ["ingest", _]) => reply(405, "ingest is POST-only\n"),
        ("GET", ["report", tenant, table]) => {
            let Some(tenant) = state.tenant(tenant) else {
                return reply(404, format!("unknown tenant {tenant:?}\n"));
            };
            if !TABLES.contains(table) {
                return reply(404, format!("unknown table {table:?}\n"));
            }
            match tenant.reports() {
                Ok(set) => (
                    200,
                    vec![("x-wtr-generation".to_owned(), set.generation.to_string())],
                    set.tables[table].clone().into_bytes(),
                ),
                Err(e) => reply(500, format!("{e}\n")),
            }
        }
        (_, ["report", _, _]) => reply(405, "report is GET-only\n"),
        ("POST", ["shutdown"]) => {
            state.seal_all();
            request_shutdown(state);
            reply(200, "sealed and shutting down\n")
        }
        (_, ["shutdown"]) => reply(405, "shutdown is POST-only\n"),
        _ => reply(404, format!("no route for {}\n", request.path)),
    }
}
