//! # wtr-serve — resident catalog/analysis server
//!
//! The operational posture the paper's dataset implies (a probe
//! infrastructure continuously observing roaming devices, §3–4) lifted
//! onto the reproduction pipeline: a long-running, multi-tenant HTTP
//! server where probe taps stream catalog records *in* and many clients
//! query classification and the analysis tables *out*, concurrently.
//!
//! Std-only networking: hand-rolled HTTP/1.1 over
//! [`std::net::TcpListener`] plus a bounded worker pool — no external
//! dependencies beyond the workspace's vendored compat crates.
//!
//! ## Ingest
//!
//! `POST /ingest/{tenant}` accepts a catalog body in either on-disk
//! format (JSONL or `WTRCAT`, auto-sniffed — the same
//! [`wtr_probes::io::CatalogStream`] zero-copy scanner as the batch
//! pipeline). Rows route into per-day open catalogs under a watermark:
//! rows within the watermark absorb into their open day, older rows
//! land directly in the sealed archive, and days that fall out of the
//! watermark are sealed — merged into the archive ascending and
//! canonicalized ([`wtr_probes::catalog::DevicesCatalog::merge`] +
//! `canonicalize`, the `ChunkFold` absorb operator "folded forever").
//!
//! ## Query
//!
//! `GET /report/{tenant}/{table}` serves all 11 analysis tables plus
//! `classify` and `summary` from a response cache keyed by the tenant's
//! **absorb generation**: every successful ingest bumps the generation,
//! invalidating cached renders precisely. Reports are rebuilt by
//! *canonical replay* — the merged snapshot is re-serialized through
//! `write_catalog` (content-canonical bytes) and replayed through the
//! identical `stream_catalog` → `analyze` → `render_analysis` path the
//! batch CLI uses — so server reports are byte-identical to
//! `wtr analyze --stream` over the same record set, at any tap count or
//! arrival order within the watermark. Readers never block ingest: the
//! tenant books lock is held only long enough to clone an `Arc` of the
//! archive and the (small) open days; the heavy replay runs outside it.

#![forbid(unsafe_code)]

pub mod http;
pub mod pool;
pub mod server;
pub mod tenant;

pub use server::{Server, ServerConfig};
pub use tenant::{ReportSet, Tenant, TABLES};
