//! Bounded worker pool: a fixed set of threads draining one shared job
//! queue. The accept loop hands each connection to the pool and goes
//! straight back to `accept()`, so slow clients occupy a worker, never
//! the listener.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool over one mpsc queue.
pub struct Pool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `size` workers. `size` must be at least 1 (the server
    /// config validates this before construction).
    pub fn new(size: usize) -> Pool {
        assert!(size >= 1, "pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("wtr-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the recv: jobs
                        // run unlocked, so workers drain concurrently.
                        let job = {
                            let guard = receiver.lock().expect("pool receiver poisoned");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: drain done
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers,
        }
    }

    /// Enqueues one job. Returns `false` if the pool is already shut
    /// down (the job is dropped).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.sender {
            Some(sender) => sender.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Closes the queue and joins every worker, letting in-flight jobs
    /// finish. Called by `Drop`, or explicitly for a deterministic
    /// drain point during shutdown.
    pub fn join(&mut self) {
        self.sender.take(); // closing the channel stops the workers
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs_before_join() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = Pool::new(4);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        // After join the pool refuses new work instead of hanging.
        assert!(!pool.execute(|| ()));
    }
}
