//! Minimal HTTP/1.1 over std: request parsing and response writing for
//! the handful of shapes the server speaks.
//!
//! One request per connection (`Connection: close` on every response) —
//! taps and report clients open short-lived connections, so keep-alive
//! buys nothing but state. The parser is deliberately strict: a bounded
//! header section, a mandatory `Content-Length` for bodies, and an
//! explicit cap on body size enforced *before* the body is read, so an
//! oversized upload is rejected with `413` without buffering it.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection socket timeout: a stalled peer frees its worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request: method, percent-free path, and the (possibly
/// empty) body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Declared `Content-Length` body, fully read.
    pub body: Vec<u8>,
}

/// Why a request could not be turned into a [`Request`].
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including timeouts).
    Io(io::Error),
    /// The head or body violated a protocol bound; the server answers
    /// with this status and message.
    Bad {
        /// Response status to send (400, 413, 431).
        status: u16,
        /// Human-readable reason, sent as the response body.
        message: String,
    },
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> HttpError {
    HttpError::Bad {
        status,
        message: message.into(),
    }
}

/// Reads one request from `stream`, enforcing `max_body_bytes`.
///
/// `Expect: 100-continue` is honored (curl sends it for any body over
/// ~1 KiB): the interim `100 Continue` goes out after the head passes
/// validation, so an oversized declared length is refused before the
/// client transmits a single body byte.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    // One-shot request/response: Nagle only adds the delayed-ACK stall.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut head_bytes = 0usize;
    let mut read_line = |reader: &mut BufReader<TcpStream>| -> Result<String, HttpError> {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad(431, "request head too large"));
        }
        if n == 0 {
            return Err(HttpError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    };

    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_owned(), t.to_owned()),
        _ => return Err(bad(400, format!("malformed request line {request_line:?}"))),
    };
    let path = target
        .split_once('?')
        .map_or(target.as_str(), |(p, _)| p)
        .to_owned();

    let mut content_length = 0usize;
    let mut expect_continue = false;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header line {line:?}")));
        };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| bad(400, format!("bad content-length {value:?}")))?;
            }
            "transfer-encoding" => {
                return Err(bad(
                    400,
                    "chunked bodies are not supported; send content-length",
                ));
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => expect_continue = true,
            _ => {}
        }
    }

    if content_length > max_body_bytes {
        return Err(bad(
            413,
            format!("body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"),
        ));
    }
    if expect_continue {
        reader
            .get_mut()
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Writes a response with the given status, extra headers and body,
/// then closes the write side. Every response carries
/// `Connection: close` and an exact `Content-Length`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str("connection: close\r\n");
    head.push_str("content-type: text/plain; charset=utf-8\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    // Head and body go out in one write: two small writes behind Nagle
    // cost a delayed-ACK round trip per response.
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}
