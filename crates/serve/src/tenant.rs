//! Per-tenant ingest books and the generation-keyed report cache.
//!
//! A tenant's state splits in two, each behind its own lock so that
//! readers never block ingest:
//!
//! * **books** — the open per-day catalogs plus the sealed archive.
//!   Ingest takes this lock for the duration of one `POST` (serial
//!   absorb per tenant: fold order, and therefore every downstream
//!   byte, is the arrival order). Report snapshots take it only long
//!   enough to clone an `Arc` of the archive and the small open days.
//! * **reports** — the rendered-table cache, keyed by the absorb
//!   generation. Ingest never touches it; it invalidates itself by
//!   comparing generations. The lock doubles as single-flight: when a
//!   generation misses, exactly one reader replays the snapshot while
//!   the rest queue for the finished result.
//!
//! ## Canonical replay
//!
//! Reports are **not** rendered from live fold state. The snapshot is
//! merged, canonicalized and re-serialized through
//! [`wtr_probes::io::write_catalog`] — whose bytes depend only on row
//! *content*, never intern order — then replayed through the identical
//! [`wtr_core::stream::stream_catalog`] → `analyze` → `render_analysis`
//! path the batch CLI walks. Same bytes in, same code, same bytes out:
//! server reports are byte-identical to `wtr analyze --stream` over the
//! same record set by construction, for any tap count or arrival order
//! that keeps each catalog row within one upload (the row-partitioned
//! tap contract; rows *split* across uploads still absorb, but f64
//! mobility sums then regroup in arrival order).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use wtr_core::report::{render_analysis, render_classify, ANALYSES};
use wtr_core::stream::{analyze, stream_catalog};
use wtr_model::tacdb::TacDatabase;
use wtr_probes::catalog::DevicesCatalog;
use wtr_probes::io::{write_catalog, CatalogStream, IoError};
use wtr_sim::stream::RecordStream;

/// Every table the report endpoint serves: the 11 analysis tables plus
/// the classification summary and the tenant summary.
pub const TABLES: [&str; 13] = [
    "labels",
    "classes",
    "home",
    "active",
    "elements",
    "rat",
    "traffic",
    "smip",
    "verticals",
    "diurnal",
    "revenue",
    "classify",
    "summary",
];

/// The ingest-side state: open days within the watermark, the sealed
/// archive behind them, and the monotone absorb generation.
#[derive(Debug)]
struct Books {
    /// Observation-window length: the max declared by any upload.
    window_days: u32,
    /// Open per-day catalogs, keyed by day index. Each holds only that
    /// day's rows, so sealing merges exactly one day at a time.
    open: BTreeMap<u32, DevicesCatalog>,
    /// The sealed archive. `Arc` + copy-on-seal: snapshots clone the
    /// handle, mutation goes through [`Arc::make_mut`], so a reader
    /// holding a pre-seal snapshot is never perturbed.
    archive: Arc<DevicesCatalog>,
    /// Highest day index seen; the watermark hangs off this.
    max_day: Option<u32>,
    /// Bumped once per successful ingest; keys the report cache.
    generation: u64,
    /// Total catalog rows accepted.
    rows_ingested: u64,
    /// Days sealed out of the open set so far.
    days_sealed: u64,
}

/// What one successful `POST /ingest` did.
#[derive(Debug, Clone, Copy)]
pub struct IngestReceipt {
    /// Rows accepted from this upload.
    pub rows: u64,
    /// The tenant's absorb generation after this upload.
    pub generation: u64,
    /// Open days sealed into the archive by this upload's watermark.
    pub sealed_days: u64,
}

/// One generation's rendered reports: every [`TABLES`] entry, rendered
/// once, served verbatim until the generation moves.
#[derive(Debug)]
pub struct ReportSet {
    /// The absorb generation these bytes were rendered at.
    pub generation: u64,
    /// Table name → exact response body.
    pub tables: BTreeMap<&'static str, String>,
}

/// One tenant: named books plus the generation-keyed report cache.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    /// Watermark width in days: rows at least this far behind the
    /// newest observed day seal / bypass the open set.
    watermark_days: u32,
    books: Mutex<Books>,
    reports: Mutex<Option<Arc<ReportSet>>>,
}

impl Tenant {
    /// Creates an empty tenant with the given watermark width.
    pub fn new(name: &str, watermark_days: u32) -> Tenant {
        Tenant {
            name: name.to_owned(),
            watermark_days,
            books: Mutex::new(Books {
                window_days: 0,
                open: BTreeMap::new(),
                archive: Arc::new(DevicesCatalog::new(0)),
                max_day: None,
                generation: 0,
                rows_ingested: 0,
                days_sealed: 0,
            }),
            reports: Mutex::new(None),
        }
    }

    /// Tenant name (as it appears in URLs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current absorb generation.
    pub fn generation(&self) -> u64 {
        self.books.lock().expect("books poisoned").generation
    }

    /// Ingests one uploaded catalog body (JSONL or `WTRCAT`,
    /// auto-sniffed). Rows within the watermark land in their open day;
    /// older rows absorb straight into the archive; days that fall out
    /// of the watermark afterwards are sealed ascending. The absorb
    /// generation bumps exactly once on success; a malformed body
    /// changes nothing.
    pub fn ingest(&self, body: &[u8]) -> Result<IngestReceipt, IoError> {
        // Decode fully *before* taking the books lock: a parse error on
        // line N must leave the tenant untouched, and decode is the
        // expensive half. JSONL symbol tables grow while streaming, so
        // rows resolve through the table only after `finish()`.
        let mut stream = CatalogStream::new(body)?;
        let upload_window = stream.window_days();
        let mut entries = Vec::new();
        while let Some(chunk) = stream.next_chunk()? {
            entries.extend(chunk);
        }
        let table = stream.finish()?;

        let mut books = self.books.lock().expect("books poisoned");
        books.window_days = books.window_days.max(upload_window);
        let rows = entries.len() as u64;
        let mut archive_touched = false;
        for entry in entries {
            let day = entry.day.0;
            books.max_day = Some(books.max_day.map_or(day, |m| m.max(day)));
            let low = self.low_watermark(&books);
            if u64::from(day) >= low {
                let window_days = books.window_days;
                books
                    .open
                    .entry(day)
                    .or_insert_with(|| DevicesCatalog::new(window_days))
                    .adopt_entry(entry, &table);
            } else {
                // Past-watermark straggler: absorb directly into the
                // sealed archive (copy-on-seal via make_mut).
                Arc::make_mut(&mut books.archive).adopt_entry(entry, &table);
                archive_touched = true;
            }
        }
        let low = self.low_watermark(&books);
        let sealed_days = self.seal_below(&mut books, low);
        if archive_touched && sealed_days == 0 {
            // seal_below canonicalizes when it seals; stragglers alone
            // must too, so the archive stays in canonical symbol form.
            Arc::make_mut(&mut books.archive).canonicalize();
        }
        books.rows_ingested += rows;
        books.generation += 1;
        Ok(IngestReceipt {
            rows,
            generation: books.generation,
            sealed_days,
        })
    }

    /// Seals every open day: the shutdown path. Bumps the generation
    /// if anything moved. Returns the number of days sealed.
    pub fn seal_all(&self) -> u64 {
        let mut books = self.books.lock().expect("books poisoned");
        let sealed = self.seal_below(&mut books, u64::MAX);
        if sealed > 0 {
            books.generation += 1;
        }
        sealed
    }

    /// Lowest day index still inside the watermark (`u64` so that
    /// [`Tenant::seal_all`] can pass an everything-seals bound even
    /// when a hostile upload carried `day == u32::MAX`).
    fn low_watermark(&self, books: &Books) -> u64 {
        books
            .max_day
            .map_or(0, |m| u64::from(m.saturating_sub(self.watermark_days)))
    }

    /// Merges every open day strictly below `low` into the archive,
    /// ascending (the deterministic fold order), then canonicalizes.
    fn seal_below(&self, books: &mut Books, low: u64) -> u64 {
        let to_seal: Vec<u32> = books
            .open
            .keys()
            .copied()
            .take_while(|day| u64::from(*day) < low)
            .collect();
        if to_seal.is_empty() {
            return 0;
        }
        let sealed = to_seal.len() as u64;
        for day in to_seal {
            let day_catalog = books.open.remove(&day).expect("day listed above");
            Arc::make_mut(&mut books.archive).merge(day_catalog);
        }
        Arc::make_mut(&mut books.archive).canonicalize();
        books.days_sealed += sealed;
        sealed
    }

    /// Atomically snapshots the books: generation, an `Arc` handle on
    /// the archive and clones of the (watermark-bounded) open days.
    /// The lock is held for the clones only — the merge happens in
    /// [`Tenant::reports`], outside it.
    fn snapshot(&self) -> (u64, Arc<DevicesCatalog>, Vec<DevicesCatalog>) {
        let books = self.books.lock().expect("books poisoned");
        (
            books.generation,
            Arc::clone(&books.archive),
            books.open.values().cloned().collect(),
        )
    }

    /// Returns the rendered reports for the current generation,
    /// rebuilding at most once per generation (single-flight under the
    /// cache lock; concurrent readers of a warm generation return the
    /// shared `Arc` immediately, and ingest never waits on this lock).
    pub fn reports(&self) -> Result<Arc<ReportSet>, String> {
        let mut cache = self.reports.lock().expect("reports poisoned");
        // Warm path first: comparing generations costs one short books
        // lock, not a snapshot — cloning the open days on every cache
        // hit would put O(open rows) on the hot read path.
        if let Some(set) = cache.as_ref() {
            if set.generation == self.generation() {
                return Ok(Arc::clone(set));
            }
        }
        let (generation, archive, open) = self.snapshot();
        if let Some(set) = cache.as_ref() {
            if set.generation == generation {
                return Ok(Arc::clone(set));
            }
        }
        let mut merged = (*archive).clone();
        for day_catalog in open {
            merged.merge(day_catalog);
        }
        merged.canonicalize();
        let set = Arc::new(build_reports(generation, &merged)?);
        *cache = Some(Arc::clone(&set));
        Ok(set)
    }
}

/// Canonical replay: serialize the merged snapshot with
/// [`write_catalog`] (content-canonical bytes) and run the batch
/// pipeline over them, rendering every table once.
fn build_reports(generation: u64, merged: &DevicesCatalog) -> Result<ReportSet, String> {
    let mut bytes = Vec::new();
    write_catalog(&mut bytes, merged).map_err(|e| format!("snapshot serialize: {e}"))?;
    let data = stream_catalog(&bytes[..]).map_err(|e| format!("snapshot replay: {e}"))?;
    let tacdb = TacDatabase::standard();
    let suite = analyze(&data.summaries, &data.apns, data.window_days, &tacdb);
    let mut tables: BTreeMap<&'static str, String> = BTreeMap::new();
    for name in ANALYSES {
        // `wtr analyze` prints each table followed by one blank line;
        // appending the same '\n' makes the response body equal the
        // CLI's whole stdout for a single-table invocation.
        let mut body = render_analysis(name, &data, &suite)?;
        body.push('\n');
        tables.insert(name, body);
    }
    tables.insert(
        "classify",
        render_classify("full", data.summaries.len(), &suite.classification),
    );
    // Content-only (no generation): two servers that absorbed the same
    // rows along different routes must agree on every table's bytes.
    // The generation travels in the `x-wtr-generation` header instead.
    tables.insert(
        "summary",
        format!(
            "rows: {}\ndevices: {}\nwindow_days: {}\n",
            data.rows,
            data.summaries.len(),
            data.window_days
        ),
    );
    Ok(ReportSet { generation, tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;

    fn catalog_with_days(days: &[u32]) -> Vec<u8> {
        let mut cat = DevicesCatalog::new(22);
        let apn = cat.intern_apn("smip.example.gprs");
        for (i, day) in days.iter().enumerate() {
            let row = cat.row_mut(
                100 + i as u64,
                Day(*day),
                Plmn::of(204, 4),
                Tac::new(35_000_000).unwrap(),
                RoamingLabel::IH,
            );
            row.events = 5;
            row.apns.insert(apn);
        }
        let mut bytes = Vec::new();
        write_catalog(&mut bytes, &cat).unwrap();
        bytes
    }

    #[test]
    fn ingest_bumps_generation_and_counts_rows() {
        let tenant = Tenant::new("t", 2);
        let receipt = tenant.ingest(&catalog_with_days(&[0, 1])).unwrap();
        assert_eq!(receipt.rows, 2);
        assert_eq!(receipt.generation, 1);
        assert_eq!(receipt.sealed_days, 0);
        assert_eq!(tenant.generation(), 1);
    }

    #[test]
    fn watermark_seals_old_days_and_routes_stragglers() {
        let tenant = Tenant::new("t", 0);
        // Day 0 opens; day 5 arrives, watermark 0 seals day 0.
        tenant.ingest(&catalog_with_days(&[0])).unwrap();
        let receipt = tenant.ingest(&catalog_with_days(&[5])).unwrap();
        assert_eq!(receipt.sealed_days, 1);
        // A day-1 straggler is past the watermark: archived directly,
        // nothing newly sealed, but still visible to reports.
        let receipt = tenant.ingest(&catalog_with_days(&[1])).unwrap();
        assert_eq!(receipt.sealed_days, 0);
        let set = tenant.reports().unwrap();
        assert!(set.tables["summary"].starts_with("rows: 3\n"));
    }

    #[test]
    fn malformed_body_leaves_tenant_untouched() {
        let tenant = Tenant::new("t", 2);
        tenant.ingest(&catalog_with_days(&[0])).unwrap();
        let mut body = catalog_with_days(&[1]);
        body.extend_from_slice(b"{broken\n");
        assert!(tenant.ingest(&body).is_err());
        assert_eq!(tenant.generation(), 1);
        let set = tenant.reports().unwrap();
        assert!(set.tables["summary"].starts_with("rows: 1\n"));
    }

    #[test]
    fn report_cache_is_generation_keyed() {
        let tenant = Tenant::new("t", 5);
        tenant.ingest(&catalog_with_days(&[0])).unwrap();
        let first = tenant.reports().unwrap();
        let again = tenant.reports().unwrap();
        assert!(Arc::ptr_eq(&first, &again), "warm generation is shared");
        tenant.ingest(&catalog_with_days(&[1])).unwrap();
        let fresh = tenant.reports().unwrap();
        assert_eq!(fresh.generation, 2);
        assert!(!Arc::ptr_eq(&first, &fresh), "absorb invalidated cache");
    }

    #[test]
    fn every_table_renders() {
        let tenant = Tenant::new("t", 5);
        tenant.ingest(&catalog_with_days(&[0, 1, 2])).unwrap();
        let set = tenant.reports().unwrap();
        for table in TABLES {
            assert!(
                !set.tables[table].is_empty(),
                "table {table} rendered empty"
            );
        }
    }
}
