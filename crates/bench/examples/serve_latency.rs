//! Hand-run `wtr_serve` latency profile (the PR-10 acceptance bench):
//! p50/p99 read latency of a warmed report endpoint, idle vs under
//! concurrent ingest pressure, plus the same-tenant cache-miss rebuild
//! cost reported separately. Numbers land in BENCH_PR10.json.
//!
//! Three phases over an in-process server:
//!
//! 1. **idle** — tenant `warm` holds the full fixture with a hot
//!    report cache; sample GET latency with nothing else running.
//! 2. **pressure** — tap threads flood tenant `flooded` with
//!    thousands of small uploads while the same `warm` reads repeat.
//!    Cross-tenant: the acceptance gate (p99 within 5x of idle)
//!    measures cache-hit reads racing absorbs, not rebuild cost.
//! 3. **miss** — absorb into `warm` itself between reads, forcing a
//!    generation miss + canonical replay per read: the worst case a
//!    same-tenant reader can see, reported but not gated.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;
use wtr_probes::catalog::DevicesCatalog;
use wtr_probes::io as probe_io;
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};
use wtr_serve::{Server, ServerConfig};

fn catalog_bytes(catalog: &DevicesCatalog) -> Vec<u8> {
    let mut bytes = Vec::new();
    probe_io::write_catalog(&mut bytes, catalog).unwrap();
    bytes
}

/// One blocking HTTP exchange; returns the status code.
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> u16 {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream);
    let mut frame = format!(
        "{method} {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    frame.extend_from_slice(body);
    reader.get_mut().write_all(&frame).unwrap();
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).unwrap();
    status
}

/// Samples `n` sequential GETs of `path`, returning microsecond
/// latencies sorted ascending.
fn sample_reads(addr: SocketAddr, path: &str, n: usize) -> Vec<u64> {
    let mut lat: Vec<u64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            assert_eq!(request(addr, "GET", path, &[]), 200);
            t.elapsed().as_micros() as u64
        })
        .collect();
    lat.sort_unstable();
    lat
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let reads: usize = std::env::var("WTR_SERVE_READS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 2_500,
        days: 22,
        seed: 99,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let full = catalog_bytes(&output.catalog);
    // Tap uploads: one small catalog per (user-bucket), thousands of
    // POSTs worth of distinct bodies to cycle through.
    let taps: Vec<Vec<u8>> = {
        let rows: Vec<_> = output.catalog.iter().collect();
        rows.chunks(25)
            .map(|chunk| {
                let mut part = DevicesCatalog::new(output.catalog.window_days());
                for row in chunk {
                    part.adopt_entry((*row).clone(), output.catalog.apn_table());
                }
                catalog_bytes(&part)
            })
            .collect()
    };
    println!(
        "fixture: {} rows, {} bytes; {} tap bodies; {reads} reads/phase",
        output.catalog.len(),
        full.len(),
        taps.len()
    );

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        watermark_secs: 100 * 86_400,
        max_body_bytes: 256 * 1024 * 1024,
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = thread::spawn(move || server.run().unwrap());

    assert_eq!(request(addr, "POST", "/ingest/warm", &full), 200);
    assert_eq!(request(addr, "GET", "/report/warm/labels", &[]), 200); // prime

    // Phase 1: idle reads.
    let idle = sample_reads(addr, "/report/warm/labels", reads);

    // Phase 2: the same reads while 2 tap threads flood another tenant.
    let stop = Arc::new(AtomicBool::new(false));
    let posted = Arc::new(AtomicU64::new(0));
    let flooders: Vec<_> = (0..2)
        .map(|i| {
            let taps = taps.clone();
            let stop = Arc::clone(&stop);
            let posted = Arc::clone(&posted);
            thread::spawn(move || {
                for body in taps.iter().cycle().skip(i) {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    assert_eq!(request(addr, "POST", "/ingest/flooded", body), 200);
                    posted.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    let under = sample_reads(addr, "/report/warm/labels", reads);
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }

    // Phase 3: same-tenant miss cost — each read pays a full
    // generation rebuild (canonical replay) because a tap absorbs
    // into the read tenant between reads.
    let miss_samples = 20.min(taps.len());
    let mut miss: Vec<u64> = taps[..miss_samples]
        .iter()
        .map(|body| {
            assert_eq!(request(addr, "POST", "/ingest/warm", body), 200);
            let t = Instant::now();
            assert_eq!(request(addr, "GET", "/report/warm/labels", &[]), 200);
            t.elapsed().as_micros() as u64
        })
        .collect();
    miss.sort_unstable();

    handle.shutdown();
    runner.join().unwrap();

    let (ip50, ip99) = (pct(&idle, 0.50), pct(&idle, 0.99));
    let (up50, up99) = (pct(&under, 0.50), pct(&under, 0.99));
    println!("idle_read_us:      p50 {ip50}  p99 {ip99}");
    println!(
        "under_ingest_us:   p50 {up50}  p99 {up99}  ({} taps absorbed during phase)",
        posted.load(Ordering::Relaxed)
    );
    println!(
        "p99_ratio_under_vs_idle: {:.2} (acceptance gate: <= 5.0, 5 ms floor)",
        up99 as f64 / ip99 as f64
    );
    println!(
        "same_tenant_miss_us: p50 {}  max {} (full canonical replay per read; not gated)",
        pct(&miss, 0.50),
        miss[miss.len() - 1]
    );
    // The 5x gate, with a 5 ms absolute floor on the allowance: when
    // warm reads sit at ~100 us, a reader's p99 under ingest is bounded
    // below by one scheduler quantum behind a concurrent absorb (pure
    // CPU time-slicing on small hosts — the tenants are different, so
    // no lock is shared), and a pure ratio would gate on the kernel
    // scheduler, not the server. On hosts where idle p99 is >= 1 ms
    // the 5x ratio binds as written.
    let allowance = (5.0 * ip99 as f64).max(5_000.0);
    assert!(
        (up99 as f64) <= allowance,
        "p99 under ingest ({up99} us) exceeded 5x idle ({ip99} us) and the 5 ms floor"
    );
    println!("PASS");
}
