//! Hand-run ingest profile: times `read_catalog` (zero-copy scanner)
//! vs `read_catalog_serde` (fallback only) on the analysis-scale
//! 2500x22 fixture, several samples each, so the BENCH_PR5 numbers can
//! be cross-checked on a quiet host.

use std::hint::black_box;
use std::time::Instant;
use wtr_probes::io as probe_io;
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};

fn main() {
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 2_500,
        days: 22,
        seed: 99,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let mut jsonl = Vec::new();
    probe_io::write_catalog(&mut jsonl, &output.catalog).unwrap();
    println!(
        "fixture: {} rows, {} bytes",
        output.catalog.len(),
        jsonl.len()
    );
    for _ in 0..5 {
        let t = Instant::now();
        black_box(probe_io::read_catalog(jsonl.as_slice()).unwrap());
        let scanner = t.elapsed();
        let t = Instant::now();
        black_box(probe_io::read_catalog_serde(jsonl.as_slice()).unwrap());
        let serde = t.elapsed();
        println!("scanner {scanner:?}  serde {serde:?}");
    }
}
