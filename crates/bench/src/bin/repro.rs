//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--devices N] [--days D] [--seed S] [--m2m-devices N] [exp ...]
//! ```
//!
//! With no experiment arguments, all of E1–E23 run. Experiment ids map to
//! paper artifacts per DESIGN.md §4 (e.g. `e2` = Fig. 2, `e11` = Fig. 11);
//! E20–E23 are the extension experiments motivated by the paper's §1/§8
//! discussion (NB-IoT detection, roaming economics, diurnal shapes, 2G
//! sunset). Output is paper-value vs measured-value, plus the underlying
//! tables/CDFs rendered as text.

use std::collections::BTreeSet;
use wtr_bench::{compare_line, MnoArtifacts};
use wtr_core::analysis::activity::StatusGroup;
use wtr_core::analysis::rat_usage::Plane;
use wtr_core::analysis::traffic::TrafficMetric;
use wtr_core::analysis::{
    activity, diurnal, platform, population, rat_usage, revenue, smip, traffic, verticals,
};
use wtr_core::baseline::{apn_only_baseline, vendor_baseline};
use wtr_core::classify::DeviceClass;
use wtr_core::metrics::Ecdf;
use wtr_core::report;
use wtr_core::validate::validate;
use wtr_model::operators::well_known;
use wtr_model::roaming::RoamingLabel;
use wtr_scenarios::{M2mScenario, M2mScenarioConfig, MnoScenarioConfig};

struct Args {
    devices: usize,
    m2m_devices: usize,
    days: u32,
    m2m_days: u32,
    seed: u64,
    json: bool,
    experiments: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 20_000,
        m2m_devices: 12_000,
        days: 22,
        m2m_days: 11,
        seed: 42,
        json: false,
        experiments: BTreeSet::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--devices" => {
                args.devices = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--m2m-devices" => {
                args.m2m_devices = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--m2m-devices N")
            }
            "--days" => args.days = iter.next().and_then(|v| v.parse().ok()).expect("--days D"),
            "--m2m-days" => {
                args.m2m_days = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--m2m-days D")
            }
            "--seed" => args.seed = iter.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--json" => args.json = true,
            "--help" | "-h" => {
                eprintln!("usage: repro [--devices N] [--m2m-devices N] [--days D] [--m2m-days D] [--seed S] [e1..e24 ...]");
                std::process::exit(0);
            }
            exp => {
                args.experiments.insert(exp.to_ascii_lowercase());
            }
        }
    }
    args
}

fn wanted(args: &Args, id: &str) -> bool {
    args.experiments.is_empty() || args.experiments.contains(id)
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Machine-readable summary: the headline metric of every experiment in
/// one JSON object, for CI dashboards and regression tracking.
fn emit_json(args: &Args) {
    use serde_json::json;
    let m2m = M2mScenario::new(M2mScenarioConfig {
        devices: args.m2m_devices,
        days: args.m2m_days,
        seed: args.seed,
        g4_hole_fraction: 0.05,
    })
    .run();
    let ov = platform::overview(&m2m.transactions);
    let dyn_es = platform::dynamics(&m2m.transactions, Some(well_known::ES_HMNO));
    let share = |iso: &str| {
        ov.hmno_device_shares
            .iter()
            .find(|(c, _, _)| c == iso)
            .map(|(_, _, s)| *s)
            .unwrap_or(0.0)
    };

    let art = MnoArtifacts::build(MnoScenarioConfig {
        devices: args.devices,
        days: args.days,
        seed: args.seed,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    });
    let shares = art.classification.shares();
    let labels = population::label_shares(&art.output.catalog);
    let breakdown = population::class_label_breakdown(&art.summaries, &art.classification);
    let hc = population::home_countries(&art.summaries, &art.classification);
    let days = activity::active_days(
        &art.summaries,
        &art.classification,
        &[
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
        ],
    );
    let gyr = activity::gyration(
        &art.summaries,
        &art.classification,
        &[(DeviceClass::M2m, StatusGroup::InboundRoaming)],
    );
    let any = rat_usage::rat_usage(
        &art.summaries,
        &art.classification,
        &[DeviceClass::M2m],
        Plane::Any,
    );
    let pop = smip::identify(
        &art.summaries,
        &art.output.tacdb,
        art.output.catalog.apn_table(),
    );
    let native = smip::group_stats(&art.summaries, &pop.native, art.output.days);
    let roaming = smip::group_stats(&art.summaries, &pop.roaming, art.output.days);
    let truth = art.observed_truth();
    let full = validate(&art.classification, &truth);
    let (cars, meters) = verticals::compare(&art.summaries, art.output.catalog.apn_table());

    let doc = json!({
        "scale": {
            "mno_devices": args.devices,
            "mno_days": args.days,
            "platform_devices": args.m2m_devices,
            "platform_days": args.m2m_days,
            "seed": args.seed,
        },
        "e1": {
            "es_device_share": share("ES"),
            "mx_device_share": share("MX"),
            "ar_device_share": share("AR"),
            "de_device_share": share("DE"),
            "es_visited_countries": ov.countries_per_hmno.get("ES").copied().unwrap_or(0),
            "es_visited_vmnos": ov.vmnos_per_hmno.get("ES").copied().unwrap_or(0),
            "mx_home_fraction": ov.home_fraction_per_hmno.get("MX").copied().unwrap_or(0.0),
        },
        "e3": {
            "mean_records": dyn_es.records_all.mean(),
            "under_2000": dyn_es.records_all.fraction_at_or_below(2000.0),
        },
        "e4": {
            "one_vmno": dyn_es.vmnos_roaming.fraction_at_or_below(1.0),
            "only_failed_fraction": dyn_es.only_failed_fraction,
        },
        "e6": labels.overall.iter().map(|(l, v)| (l.to_string(), *v)).collect::<std::collections::BTreeMap<_, _>>(),
        "e7": shares.iter().map(|(c, v)| (c.label().to_string(), *v)).collect::<std::collections::BTreeMap<_, _>>(),
        "e8": { "top3_share": hc.overall.iter().take(3).map(|(_, _, s)| s).sum::<f64>() },
        "e10": {
            "ih_m2m": breakdown.share_of_label(DeviceClass::M2m, RoamingLabel::IH),
            "m2m_ih": breakdown.share_of_class(DeviceClass::M2m, RoamingLabel::IH),
        },
        "e11": {
            "m2m_inbound_median_days": days[0].days.median(),
            "smart_inbound_median_days": days[1].days.median(),
        },
        "e12": { "m2m_under_1km": gyr[0].gyration_km.fraction_at_or_below(1.0) },
        "e13": { "m2m_2g_only": any[0].share("2G only") },
        "e15": {
            "native_full_period": native.full_period_fraction,
            "roaming_le_5_days": roaming.active_days.fraction_at_or_below(5.0),
        },
        "e16": {
            "signaling_ratio": roaming.signaling_per_day.mean().unwrap_or(0.0)
                / native.signaling_per_day.mean().unwrap_or(1.0).max(1e-9),
            "native_failed": native.failed_device_fraction,
            "roaming_failed": roaming.failed_device_fraction,
        },
        "e17": {
            "roaming_home_operators": pop.roaming_home_plmns.len(),
            "roaming_vendors": pop.roaming_vendors,
        },
        "e18": {
            "car_gyration_median_km": cars.gyration_km.median(),
            "meter_gyration_median_km": meters.gyration_km.median(),
        },
        "e19": {
            "m2m_precision": full.m2m_precision,
            "m2m_recall": full.m2m_recall,
        },
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("serializable")
    );
}

fn main() {
    let args = parse_args();
    if args.json {
        emit_json(&args);
        return;
    }
    let m2m_ids = ["e1", "e2", "e3", "e4", "e5"];
    let need_m2m = m2m_ids.iter().any(|id| wanted(&args, id));
    let need_mno = (6..=22).any(|i| wanted(&args, &format!("e{i}")) && i != 20);

    println!("=== Where Things Roam — reproduction harness ===");
    println!(
        "scale: MNO {} devices / {} days; platform {} devices / {} days; seed {}",
        args.devices, args.days, args.m2m_devices, args.m2m_days, args.seed
    );
    println!();

    if need_m2m {
        let out = M2mScenario::new(M2mScenarioConfig {
            devices: args.m2m_devices,
            days: args.m2m_days,
            seed: args.seed,
            g4_hole_fraction: 0.05,
        })
        .run();
        println!(
            "[M2M platform dataset] {} transactions from {} devices over {} days",
            out.transactions.len(),
            out.devices,
            out.days
        );
        let ov = platform::overview(&out.transactions);

        if wanted(&args, "e1") {
            println!("\n--- E1 (§3.2): HMNO shares & footprint ---");
            for (iso, paper_dev, paper_sig) in [
                ("ES", "52.3%", "81.8%"),
                ("MX", "42.2%", "-"),
                ("AR", "4.7%", "-"),
                ("DE", "~0.8%", "-"),
            ] {
                let dev = ov
                    .hmno_device_shares
                    .iter()
                    .find(|(c, _, _)| c == iso)
                    .map(|(_, _, s)| pct(*s))
                    .unwrap_or_else(|| "absent".into());
                let sig = ov
                    .hmno_signaling_shares
                    .iter()
                    .find(|(c, _, _)| c == iso)
                    .map(|(_, _, s)| pct(*s))
                    .unwrap_or_else(|| "absent".into());
                println!(
                    "{}",
                    compare_line(&format!("{iso} device share"), paper_dev, dev)
                );
                if paper_sig != "-" {
                    println!(
                        "{}",
                        compare_line(&format!("{iso} signaling share"), paper_sig, sig)
                    );
                }
            }
            println!(
                "{}",
                compare_line(
                    "ES visited countries",
                    "77",
                    ov.countries_per_hmno
                        .get("ES")
                        .copied()
                        .unwrap_or(0)
                        .to_string()
                )
            );
            println!(
                "{}",
                compare_line(
                    "ES visited VMNOs",
                    "127",
                    ov.vmnos_per_hmno
                        .get("ES")
                        .copied()
                        .unwrap_or(0)
                        .to_string()
                )
            );
            println!(
                "{}",
                compare_line(
                    "MX devices never roaming",
                    "~90%",
                    pct(ov.home_fraction_per_hmno.get("MX").copied().unwrap_or(0.0))
                )
            );
        }

        if wanted(&args, "e2") {
            println!("\n--- E2 (Fig. 2): devices per HMNO × visited country ---");
            // Print the top visited countries per HMNO row.
            for hmno in ["ES", "MX", "AR", "DE"] {
                let mut cols: Vec<(String, f64)> = ov
                    .visited_matrix
                    .cols()
                    .into_iter()
                    .map(|c| (c.clone(), ov.visited_matrix.row_share(hmno, &c)))
                    .filter(|(_, v)| *v > 0.0)
                    .collect();
                cols.sort_by(|a, b| b.1.total_cmp(&a.1));
                let top: Vec<String> = cols
                    .iter()
                    .take(6)
                    .map(|(c, v)| format!("{c} {:.0}%", v * 100.0))
                    .collect();
                println!("  {hmno:<3} → {}", top.join(", "));
            }
        }

        let dyn_all = platform::dynamics(&out.transactions, None);
        let dyn_es = platform::dynamics(&out.transactions, Some(well_known::ES_HMNO));

        if wanted(&args, "e3") {
            println!("\n--- E3 (Fig. 3-left): signaling records per device ---");
            println!(
                "{}",
                compare_line(
                    "mean records/device",
                    "267",
                    format!("{:.0}", dyn_all.records_all.mean().unwrap_or(0.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "fraction of devices under 2000 records",
                    "97%",
                    pct(dyn_all.records_all.fraction_at_or_below(2_000.0))
                )
            );
            let roam_med = dyn_es.records_roaming.median().unwrap_or(0.0);
            let native_med = dyn_es.records_native.median().unwrap_or(0.0).max(1.0);
            println!(
                "{}",
                compare_line(
                    "roaming/native median ratio (ES)",
                    "~10x",
                    format!("{:.1}x", roam_med / native_med)
                )
            );
            print!(
                "{}",
                report::cdf("records per device (all)", &dyn_all.records_all, 10)
            );
        }

        if wanted(&args, "e4") {
            println!("\n--- E4 (Fig. 3-center): VMNOs per roaming device ---");
            let e = &dyn_es.vmnos_roaming;
            println!(
                "{}",
                compare_line(
                    "devices with 1 VMNO",
                    "65%",
                    pct(e.fraction_at_or_below(1.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "devices with 2 VMNOs",
                    ">25%",
                    pct(e.fraction_at_or_below(2.0) - e.fraction_at_or_below(1.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "devices with 3+ VMNOs",
                    "~5%",
                    pct(1.0 - e.fraction_at_or_below(2.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "max VMNOs for an only-failed device",
                    "19",
                    dyn_all.max_vmnos_failed_device.to_string()
                )
            );
            println!(
                "{}",
                compare_line(
                    "ES devices with only failed 4G procedures",
                    "40%",
                    pct(dyn_es.only_failed_fraction)
                )
            );
        }

        if wanted(&args, "e5") {
            println!("\n--- E5 (Fig. 3-right): inter-VMNO switches (multi-VMNO devices) ---");
            let e = &dyn_es.switches_multi_vmno;
            println!(
                "{}",
                compare_line(
                    "devices with ≤2 switches",
                    "~50%",
                    pct(e.fraction_at_or_below(2.0))
                )
            );
            let daily = args.m2m_days as f64;
            println!(
                "{}",
                compare_line(
                    "devices switching at least daily",
                    "~20%",
                    pct(1.0 - e.fraction_at_or_below(daily - 1.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "extreme switchers (>100 over window)",
                    "~3%",
                    pct(1.0 - e.fraction_at_or_below(100.0))
                )
            );
            print!("{}", report::cdf("switches per multi-VMNO device", e, 10));
        }
        println!();
    }

    if need_mno {
        let art = MnoArtifacts::build(MnoScenarioConfig {
            devices: args.devices,
            days: args.days,
            seed: args.seed,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        });
        println!(
            "[MNO dataset] {} devices, {} device-days; records: {} radio / {} CDR / {} xDR",
            art.output.catalog.device_count(),
            art.output.catalog.len(),
            art.output.record_counts.0,
            art.output.record_counts.1,
            art.output.record_counts.2
        );

        if wanted(&args, "e6") {
            println!("\n--- E6 (§4.2): daily roaming-label shares ---");
            let ls = population::label_shares(&art.output.catalog);
            for (label, paper) in [
                (RoamingLabel::HH, "~48%"),
                (RoamingLabel::VH, "~33%"),
                (RoamingLabel::IH, "~18%"),
            ] {
                let measured = ls.overall.get(&label).copied().unwrap_or(0.0);
                println!(
                    "{}",
                    compare_line(&format!("{label} share"), paper, pct(measured))
                );
            }
            // Stability: report min/max of I:H across days.
            let ih: Vec<f64> = ls
                .per_day
                .iter()
                .filter(|d| !d.is_empty())
                .map(|d| d.get(&RoamingLabel::IH).copied().unwrap_or(0.0))
                .collect();
            let e = Ecdf::new(ih);
            println!(
                "  I:H daily share range: {:.1}%..{:.1}% (paper: stable across 22 days)",
                e.min().unwrap_or(0.0) * 100.0,
                e.max().unwrap_or(0.0) * 100.0
            );
        }

        if wanted(&args, "e7") {
            println!("\n--- E7 (§4.3): classification output ---");
            let shares = art.classification.shares();
            for (class, paper) in [
                (DeviceClass::Smart, "62%"),
                (DeviceClass::Feat, "8%"),
                (DeviceClass::M2m, "26%"),
                (DeviceClass::M2mMaybe, "4%"),
            ] {
                let measured = shares.get(&class).copied().unwrap_or(0.0);
                println!(
                    "{}",
                    compare_line(&format!("{class} share"), paper, pct(measured))
                );
            }
            println!(
                "{}",
                compare_line(
                    "devices without any APN",
                    "~21%",
                    pct(art.classification.devices_without_apn as f64
                        / art.summaries.len().max(1) as f64)
                )
            );
            println!(
                "  APN inventory: {} distinct, {} validated as M2M",
                art.classification.total_apns,
                art.classification.validated_apns.len()
            );
        }

        if wanted(&args, "e8") || wanted(&args, "e9") {
            println!("\n--- E8/E9 (Fig. 5): home countries of inbound roamers ---");
            let hc = population::home_countries(&art.summaries, &art.classification);
            let top3: f64 = hc.overall.iter().take(3).map(|(_, _, s)| s).sum();
            let top20: f64 = hc.overall.iter().take(20).map(|(_, _, s)| s).sum();
            println!(
                "{}",
                compare_line("top-3 home countries share", "~60%", pct(top3))
            );
            println!(
                "{}",
                compare_line("top-20 home countries share", ">93%", pct(top20))
            );
            let m2m_top3: f64 = ["NL", "SE", "ES"]
                .iter()
                .map(|iso| hc.by_class.row_share("m2m", iso))
                .sum();
            println!(
                "{}",
                compare_line("m2m devices from NL/SE/ES", "83%", pct(m2m_top3))
            );
            let smart_top3: f64 = ["NL", "SE", "ES"]
                .iter()
                .map(|iso| hc.by_class.row_share("smart", iso))
                .sum();
            println!(
                "{}",
                compare_line("smart devices from NL/SE/ES", "17%", pct(smart_top3))
            );
            print!(
                "{}",
                report::shares_table("inbound roamers by home country (top 10)", &hc.overall, 10)
            );
        }

        if wanted(&args, "e10") {
            println!("\n--- E10 (Fig. 6): device class × roaming label ---");
            let b = population::class_label_breakdown(&art.summaries, &art.classification);
            println!(
                "{}",
                compare_line(
                    "I:H composition: m2m",
                    "71.1%",
                    pct(b.share_of_label(DeviceClass::M2m, RoamingLabel::IH))
                )
            );
            println!(
                "{}",
                compare_line(
                    "I:H composition: smart",
                    "27.1%",
                    pct(b.share_of_label(DeviceClass::Smart, RoamingLabel::IH))
                )
            );
            println!(
                "{}",
                compare_line(
                    "m2m devices that are I:H",
                    "74.7%",
                    pct(b.share_of_class(DeviceClass::M2m, RoamingLabel::IH))
                )
            );
            println!(
                "{}",
                compare_line(
                    "smart devices that are I:H",
                    "12.1%",
                    pct(b.share_of_class(DeviceClass::Smart, RoamingLabel::IH))
                )
            );
            println!(
                "{}",
                compare_line(
                    "feat devices that are I:H",
                    "6.4%",
                    pct(b.share_of_class(DeviceClass::Feat, RoamingLabel::IH))
                )
            );
            print!(
                "{}",
                report::heatmap_row_normalized("class × label", &b.table)
            );
        }

        if wanted(&args, "e11") {
            println!("\n--- E11 (Fig. 7): active days ---");
            let res = activity::active_days(
                &art.summaries,
                &art.classification,
                &MnoArtifacts::standard_pairs(),
            );
            let find = |c: DeviceClass, s: StatusGroup| {
                res.iter()
                    .find(|r| r.class == c && r.status == s)
                    .and_then(|r| r.days.median())
                    .unwrap_or(0.0)
            };
            let m2m_in = find(DeviceClass::M2m, StatusGroup::InboundRoaming);
            let smart_in = find(DeviceClass::Smart, StatusGroup::InboundRoaming);
            println!(
                "{}",
                compare_line(
                    "inbound m2m median active days",
                    "9",
                    format!("{m2m_in:.0}")
                )
            );
            println!(
                "{}",
                compare_line(
                    "inbound smart median active days",
                    "2",
                    format!("{smart_in:.0}")
                )
            );
            println!(
                "{}",
                compare_line(
                    "inbound m2m/smart ratio",
                    "4.5x",
                    format!("{:.1}x", m2m_in / smart_in.max(1.0))
                )
            );
        }

        if wanted(&args, "e12") {
            println!("\n--- E12 (Fig. 8): radius of gyration ---");
            let res = activity::gyration(
                &art.summaries,
                &art.classification,
                &[
                    (DeviceClass::M2m, StatusGroup::InboundRoaming),
                    (DeviceClass::Smart, StatusGroup::InboundRoaming),
                ],
            );
            let m2m_under_1km = res[0].gyration_km.fraction_at_or_below(1.0);
            println!(
                "{}",
                compare_line(
                    "inbound m2m with gyration < 1 km",
                    "~80%",
                    pct(m2m_under_1km)
                )
            );
            print!(
                "{}",
                report::cdf("inbound m2m gyration (km)", &res[0].gyration_km, 8)
            );
            print!(
                "{}",
                report::cdf("inbound smart gyration (km)", &res[1].gyration_km, 8)
            );
        }

        if wanted(&args, "e13") {
            println!("\n--- E13 (Fig. 9): RAT usage per class ---");
            let classes = [DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat];
            let any =
                rat_usage::rat_usage(&art.summaries, &art.classification, &classes, Plane::Any);
            let data =
                rat_usage::rat_usage(&art.summaries, &art.classification, &classes, Plane::Data);
            let voice =
                rat_usage::rat_usage(&art.summaries, &art.classification, &classes, Plane::Voice);
            println!(
                "{}",
                compare_line(
                    "m2m 2G-only (connectivity)",
                    "77.4%",
                    pct(any[0].share("2G only"))
                )
            );
            println!(
                "{}",
                compare_line("m2m 2G-only (data)", "56.7%", pct(data[0].share("2G only")))
            );
            println!(
                "{}",
                compare_line(
                    "m2m with no data activity",
                    "24.5%",
                    pct(data[0].share("none"))
                )
            );
            println!(
                "{}",
                compare_line("m2m 2G voice", "60.6%", pct(voice[0].share("2G only")))
            );
            println!(
                "{}",
                compare_line(
                    "m2m with no voice activity",
                    "27.5%",
                    pct(voice[0].share("none"))
                )
            );
            println!(
                "{}",
                compare_line(
                    "feat 2G-only (connectivity)",
                    "50.9%",
                    pct(any[2].share("2G only"))
                )
            );
            println!(
                "{}",
                compare_line(
                    "feat with no data activity",
                    "56.8%",
                    pct(data[2].share("none"))
                )
            );
            println!(
                "{}",
                compare_line(
                    "feat with no voice activity",
                    "7.3%",
                    pct(voice[2].share("none"))
                )
            );
        }

        if wanted(&args, "e14") {
            println!("\n--- E14 (Fig. 10): traffic volumes ---");
            let pairs = MnoArtifacts::standard_pairs();
            let sig = traffic::traffic_dist(
                &art.summaries,
                &art.classification,
                &pairs,
                TrafficMetric::SignalingPerDay,
            );
            let calls = traffic::traffic_dist(
                &art.summaries,
                &art.classification,
                &pairs,
                TrafficMetric::CallsPerDay,
            );
            let bytes = traffic::traffic_dist(
                &art.summaries,
                &art.classification,
                &pairs,
                TrafficMetric::BytesPerDay,
            );
            let med = |v: &[traffic::TrafficDist], c: DeviceClass, s: StatusGroup| {
                v.iter()
                    .find(|d| d.class == c && d.status == s)
                    .and_then(|d| d.dist.median())
                    .unwrap_or(0.0)
            };
            println!(
                "{}",
                compare_line(
                    "signaling: m2m ≪ smart (median ratio)",
                    "≪1",
                    format!(
                        "{:.2}",
                        med(&sig, DeviceClass::M2m, StatusGroup::InboundRoaming)
                            / med(&sig, DeviceClass::Smart, StatusGroup::Native).max(1e-9)
                    )
                )
            );
            let m2m_zero_calls = calls
                .iter()
                .find(|d| d.class == DeviceClass::M2m && d.status == StatusGroup::InboundRoaming)
                .map(traffic::zero_fraction)
                .unwrap_or(0.0);
            println!(
                "{}",
                compare_line(
                    "inbound m2m devices with zero calls",
                    "vast majority",
                    pct(m2m_zero_calls)
                )
            );
            println!(
                "{}",
                compare_line(
                    "data: native smart / inbound smart (median ratio)",
                    ">1 (bill shock)",
                    format!(
                        "{:.1}x",
                        med(&bytes, DeviceClass::Smart, StatusGroup::Native)
                            / med(&bytes, DeviceClass::Smart, StatusGroup::InboundRoaming).max(1.0)
                    )
                )
            );
            println!(
                "{}",
                compare_line(
                    "data: inbound m2m median bytes/day",
                    "very small",
                    format!(
                        "{:.0} B",
                        med(&bytes, DeviceClass::M2m, StatusGroup::InboundRoaming)
                    )
                )
            );
        }

        if wanted(&args, "e15") || wanted(&args, "e16") || wanted(&args, "e17") {
            println!("\n--- E15–E17 (Fig. 11, §7.1): SMIP smart meters ---");
            let pop = smip::identify(
                &art.summaries,
                &art.output.tacdb,
                art.output.catalog.apn_table(),
            );
            let native = smip::group_stats(&art.summaries, &pop.native, art.output.days);
            let roaming = smip::group_stats(&art.summaries, &pop.roaming, art.output.days);
            println!(
                "  identified: {} native, {} roaming meters",
                native.devices, roaming.devices
            );
            if wanted(&args, "e15") {
                println!(
                    "{}",
                    compare_line(
                        "native meters active full period",
                        "73%",
                        pct(native.full_period_fraction)
                    )
                );
                let day1 = &native.active_days_day1_cohort;
                let full_day1 = if day1.is_empty() {
                    0.0
                } else {
                    1.0 - day1.fraction_at_or_below(art.output.days as f64 - 0.5)
                };
                println!(
                    "{}",
                    compare_line("day-1 cohort active full period", "83%", pct(full_day1))
                );
                println!(
                    "{}",
                    compare_line(
                        "roaming meters active ≤5 days",
                        "50%",
                        pct(roaming.active_days.fraction_at_or_below(5.0))
                    )
                );
            }
            if wanted(&args, "e16") {
                let ratio = roaming.signaling_per_day.mean().unwrap_or(0.0)
                    / native.signaling_per_day.mean().unwrap_or(1.0).max(1e-9);
                println!(
                    "{}",
                    compare_line(
                        "roaming/native signaling per day",
                        "~10x",
                        format!("{ratio:.1}x")
                    )
                );
                println!(
                    "{}",
                    compare_line(
                        "native meters with ≥1 failed msg",
                        "10%",
                        pct(native.failed_device_fraction)
                    )
                );
                println!(
                    "{}",
                    compare_line(
                        "roaming meters with ≥1 failed msg",
                        "35%",
                        pct(roaming.failed_device_fraction)
                    )
                );
            }
            if wanted(&args, "e17") {
                println!(
                    "{}",
                    compare_line(
                        "roaming meters 2G-only",
                        "100%",
                        pct(roaming
                            .rat_categories
                            .get("2G only")
                            .copied()
                            .unwrap_or(0.0))
                    )
                );
                let native_3g_only = native.rat_categories.get("3G only").copied().unwrap_or(0.0);
                println!(
                    "{}",
                    compare_line("native meters on 3G only", "~67%", pct(native_3g_only))
                );
                println!(
                    "{}",
                    compare_line(
                        "roaming-meter home operators",
                        "1 (NL)",
                        pop.roaming_home_plmns.len().to_string()
                    )
                );
                println!(
                    "{}",
                    compare_line(
                        "roaming-meter hardware vendors",
                        "Gemalto+Telit",
                        format!("{:?}", pop.roaming_vendors)
                    )
                );
            }
        }

        if wanted(&args, "e18") {
            println!("\n--- E18 (Fig. 12): connected cars vs smart meters ---");
            let (cars, meters) = verticals::compare(&art.summaries, art.output.catalog.apn_table());
            println!(
                "  identified: {} cars, {} meters (inbound)",
                cars.devices, meters.devices
            );
            println!(
                "{}",
                compare_line(
                    "car median gyration",
                    "high (≈ smartphones)",
                    format!("{:.1} km", cars.gyration_km.median().unwrap_or(0.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "meter median gyration",
                    "~0 km",
                    format!("{:.3} km", meters.gyration_km.median().unwrap_or(0.0))
                )
            );
            println!(
                "{}",
                compare_line(
                    "car/meter signaling ratio",
                    "≫1",
                    format!(
                        "{:.1}x",
                        cars.signaling_per_day.median().unwrap_or(0.0)
                            / meters.signaling_per_day.median().unwrap_or(1.0).max(1e-9)
                    )
                )
            );
            println!(
                "{}",
                compare_line(
                    "car/meter data ratio",
                    "≫1",
                    format!(
                        "{:.0}x",
                        cars.bytes_per_day.median().unwrap_or(0.0)
                            / meters.bytes_per_day.median().unwrap_or(1.0).max(1.0)
                    )
                )
            );
        }

        if wanted(&args, "e21") {
            println!("\n--- E21 (extension, §1/§9): inbound load vs wholesale revenue ---");
            let econ = revenue::inbound_economics(
                &art.summaries,
                &art.classification,
                revenue::RateCard::default(),
            );
            println!(
                "  {:<10} {:>8} {:>11} {:>14} {:>14} {:>13}",
                "class", "devices", "load share", "revenue share", "load/revenue", "€/device"
            );
            for e in &econ {
                println!(
                    "  {:<10} {:>8} {:>10.1}% {:>13.1}% {:>13.1}x {:>13.4}",
                    e.class.label(),
                    e.devices,
                    e.load_share * 100.0,
                    e.revenue_share * 100.0,
                    e.load_to_revenue(),
                    e.revenue_per_device
                );
            }
            println!("  (the paper's complaint quantified: m2m should sit far above 1x)");
        }

        if wanted(&args, "e22") {
            println!("\n--- E22 (extension, §1 [18]): diurnal traffic shapes ---");
            let profiles = diurnal::profiles(
                &art.summaries,
                &art.classification,
                &[DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat],
            );
            for p in &profiles {
                println!(
                    "  {:<6} night share {:>5.1}% (flat = 25%)  peak/trough {:>6.1}x",
                    p.class.label(),
                    p.night_share * 100.0,
                    p.peak_to_trough
                );
            }
            println!("  (machine traffic is flat around the clock; human traffic dies at night)");
        }

        if wanted(&args, "e19") {
            println!("\n--- E19 (§4.3): classifier vs baselines (vs hidden ground truth) ---");
            let truth = art.observed_truth();
            let full = validate(&art.classification, &truth);
            let vendor = validate(&vendor_baseline(&art.output.tacdb, &art.summaries), &truth);
            let apn = validate(
                &apn_only_baseline(
                    &art.output.tacdb,
                    &art.summaries,
                    art.output.catalog.apn_table(),
                ),
                &truth,
            );
            let fmt = |v: &wtr_core::validate::Validation| {
                format!(
                    "precision {} recall {}",
                    v.m2m_precision.map(pct).unwrap_or_else(|| "-".into()),
                    v.m2m_recall.map(pct).unwrap_or_else(|| "-".into())
                )
            };
            println!("  full pipeline : {}", fmt(&full));
            println!("  vendor-only   : {}", fmt(&vendor));
            println!("  APN-only      : {}", fmt(&apn));
            println!(
                "  (paper could not compute these — ground truth is a simulator privilege; the ordering full ≥ baselines is the reproduction target)"
            );
        }
        println!();
    }

    if wanted(&args, "e20") {
        println!("--- E20 (extension, §8): NB-IoT what-if ---");
        let small = args.devices / 4;
        let base = MnoArtifacts::build(MnoScenarioConfig {
            devices: small,
            days: args.days,
            seed: args.seed,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        });
        let nb = MnoArtifacts::build(MnoScenarioConfig {
            devices: small,
            days: args.days,
            seed: args.seed,
            nbiot_meter_fraction: 0.5,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        });
        println!(
            "  baseline (2019 population): {} devices classified via NB-IoT RAT",
            base.classification.nbiot_detected
        );
        println!(
            "  LPWA migration (50% of inbound meters on NB-IoT): {} devices detected by RAT alone",
            nb.classification.nbiot_detected
        );
        let recall = |art: &MnoArtifacts| {
            validate(&art.classification, &art.observed_truth())
                .m2m_recall
                .unwrap_or(0.0)
        };
        println!(
            "  m2m recall: baseline {} → NB-IoT world {}",
            pct(recall(&base)),
            pct(recall(&nb))
        );
        println!("  (§8: 'NB-IoT will enable visited MNOs to easily detect the inbound roaming IoT devices')");
        println!();
    }

    if wanted(&args, "e24") {
        println!("--- E24 (extension, §1): GSMA IMSI-range transparency what-if ---");
        let small = args.devices / 4;
        let run = |transparency: bool| {
            MnoArtifacts::build(MnoScenarioConfig {
                devices: small,
                days: args.days,
                seed: args.seed,
                nbiot_meter_fraction: 0.0,
                sunset_2g_uk: false,
                gsma_transparency: transparency,
                record_loss_fraction: 0.0,
            })
        };
        let opaque = run(false);
        let transparent = run(true);
        println!(
            "  devices tagged via published ranges: {} → {}",
            opaque.classification.range_detected, transparent.classification.range_detected
        );
        let score = |art: &MnoArtifacts, c: &wtr_core::classify::Classification| {
            let v = validate(c, &art.observed_truth());
            format!(
                "precision {} recall {}",
                v.m2m_precision.map(pct).unwrap_or_else(|| "-".into()),
                v.m2m_recall.map(pct).unwrap_or_else(|| "-".into())
            )
        };
        let range_only = wtr_core::baseline::imsi_range_baseline(
            &transparent.output.tacdb,
            &transparent.summaries,
        );
        println!(
            "  full pipeline, no transparency : {}",
            score(&opaque, &opaque.classification)
        );
        println!(
            "  full pipeline + NL range shared : {}",
            score(&transparent, &transparent.classification)
        );
        println!(
            "  range-tags only (no APN work)   : {}",
            score(&transparent, &range_only)
        );
        println!(
            "  (§1: the GSMA recommendation removes inference for partners that comply; the APN pipeline covers everyone else)"
        );
        println!();
    }

    if wanted(&args, "e23") {
        println!("--- E23 (extension, §6.1/§8): UK 2G sunset what-if ---");
        let small = args.devices / 4;
        let run = |sunset: bool| {
            MnoArtifacts::build(MnoScenarioConfig {
                devices: small,
                days: args.days,
                seed: args.seed,
                nbiot_meter_fraction: 0.0,
                sunset_2g_uk: sunset,
                gsma_transparency: false,
                record_loss_fraction: 0.0,
            })
        };
        let before = run(false);
        let after = run(true);
        let m2m_devices = |art: &MnoArtifacts| {
            art.summaries
                .iter()
                .filter(|s| {
                    art.output
                        .ground_truth
                        .get(&s.user)
                        .is_some_and(|v| v.is_m2m())
                })
                .count()
        };
        let (b, a) = (m2m_devices(&before), m2m_devices(&after));
        println!(
            "  visible devices: {} → {}",
            before.summaries.len(),
            after.summaries.len()
        );
        println!(
            "  visible ground-truth M2M devices: {b} → {a} ({} stranded)",
            pct(1.0 - a as f64 / b.max(1) as f64)
        );
        println!(
            "  (§6.1: 77.4% of M2M devices are 2G-only — retiring 2G silences most of the IoT fleet)"
        );
        println!();
    }
    println!("done.");
}
