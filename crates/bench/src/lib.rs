//! # wtr-bench — experiment runners shared by the `repro` binary and the
//! Criterion benches.
//!
//! Each paper figure/table has a function here that takes scenario outputs
//! and produces the numbers the paper reports. The `repro` binary prints
//! them next to the paper's values; the benches measure the cost of the
//! pipeline stages that produce them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::OnceLock;
use wtr_core::analysis::activity::StatusGroup;
use wtr_core::classify::{Classification, Classifier, DeviceClass};
use wtr_core::summary::{summarize, DeviceSummary};
use wtr_model::vertical::Vertical;
use wtr_probes::records::M2mTransaction;
use wtr_scenarios::mno::MnoScenarioOutput;
use wtr_scenarios::{M2mScenario, M2mScenarioConfig};
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};

/// Everything the MNO-side experiments need, computed once.
pub struct MnoArtifacts {
    /// The scenario output (catalog + ground truth + TAC catalog).
    pub output: MnoScenarioOutput,
    /// Per-device summaries.
    pub summaries: Vec<DeviceSummary>,
    /// The full classification pipeline's result.
    pub classification: Classification,
}

impl MnoArtifacts {
    /// Runs the MNO scenario and the classification pipeline.
    pub fn build(config: MnoScenarioConfig) -> MnoArtifacts {
        let output = MnoScenario::new(config).run();
        let summaries = summarize(&output.catalog);
        let classification =
            Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());
        MnoArtifacts {
            output,
            summaries,
            classification,
        }
    }

    /// Ground truth restricted to devices that actually appear in the
    /// catalog (devices that never touched the studied MNO are invisible).
    pub fn observed_truth(&self) -> BTreeMap<u64, Vertical> {
        self.summaries
            .iter()
            .filter_map(|s| self.output.ground_truth.get(&s.user).map(|v| (s.user, *v)))
            .collect()
    }

    /// The standard (class, status) pairs used by Fig. 7/8/10 panels.
    pub fn standard_pairs() -> Vec<(DeviceClass, StatusGroup)> {
        vec![
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::M2m, StatusGroup::Native),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::Native),
            (DeviceClass::Feat, StatusGroup::InboundRoaming),
            (DeviceClass::Feat, StatusGroup::Native),
        ]
    }
}

/// Shared fixture for Criterion benches: one small MNO scenario built
/// once per process (Criterion re-enters the bench body thousands of
/// times; the scenario must stay out of the timing loop).
pub fn bench_mno() -> &'static MnoArtifacts {
    static CELL: OnceLock<MnoArtifacts> = OnceLock::new();
    CELL.get_or_init(|| {
        MnoArtifacts::build(MnoScenarioConfig {
            devices: 2_500,
            days: 22,
            seed: 99,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        })
    })
}

/// Shared fixture: one small M2M-platform transaction log.
pub fn bench_m2m() -> &'static Vec<M2mTransaction> {
    static CELL: OnceLock<Vec<M2mTransaction>> = OnceLock::new();
    CELL.get_or_init(|| {
        M2mScenario::new(M2mScenarioConfig {
            devices: 2_000,
            days: 11,
            seed: 99,
            g4_hole_fraction: 0.05,
        })
        .run()
        .transactions
    })
}

/// Formats a paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: String) -> String {
    format!("  {label:<52} paper: {paper:<16} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_build_end_to_end() {
        let art = MnoArtifacts::build(MnoScenarioConfig {
            devices: 600,
            days: 6,
            seed: 3,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        });
        assert!(!art.summaries.is_empty());
        assert_eq!(art.classification.classes.len(), art.summaries.len());
        let truth = art.observed_truth();
        assert_eq!(truth.len(), art.summaries.len());
    }

    #[test]
    fn compare_line_contains_both_sides() {
        let line = compare_line("m2m share", "26%", "27.3%".to_owned());
        assert!(line.contains("26%") && line.contains("27.3%"));
    }
}
