//! E12 — Fig. 8: radius-of-gyration distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::{bench_mno, MnoArtifacts};
use wtr_core::analysis::activity;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let pairs = MnoArtifacts::standard_pairs();
    c.bench_function("fig8_gyration", |b| {
        b.iter(|| {
            activity::gyration(
                black_box(&art.summaries),
                black_box(&art.classification),
                black_box(&pairs),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
