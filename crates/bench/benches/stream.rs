//! Streaming vs materialized ingest: wall time and peak allocation.
//!
//! The PR-3 acceptance bench. A counting global allocator (delta of
//! live bytes, high-water mark) measures what the streaming refactor is
//! for: `stream_catalog` folds a catalog file chunk by chunk into
//! summaries + label shares without ever materializing a
//! `DevicesCatalog`, so its peak allocation is O(devices + chunk
//! window) while the materialized path peaks at O(rows + devices).
//! Peak numbers are printed once as JSON (see `BENCH_PR3.json`);
//! Criterion then times both paths on the same in-memory files.

use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use wtr_core::stream::{analyze, analyze_rescan, materialize_catalog, stream_catalog};
use wtr_probes::io as probe_io;
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};

/// [`System`] with live-byte and high-water-mark accounting. Counts
/// requested sizes (not allocator slack): exactly the quantity the
/// bounded-memory contract speaks about.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns the peak allocation above entry, in bytes.
fn peak_above_baseline<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let baseline = CURRENT.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (peak, r)
}

fn fixture() -> (Vec<u8>, Vec<u8>) {
    // ≥10× the 400-device/5-day acceptance scenario.
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 2_500,
        days: 22,
        seed: 99,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let mut jsonl = Vec::new();
    probe_io::write_catalog(&mut jsonl, &output.catalog).unwrap();
    let mut wtrcat = Vec::new();
    probe_io::write_catalog_bin(&mut wtrcat, &output.catalog).unwrap();
    (jsonl, wtrcat)
}

fn bench(c: &mut Criterion) {
    let (jsonl, wtrcat) = fixture();

    // One-shot peak-allocation comparison, printed as JSON for
    // BENCH_PR3.json. The file bytes themselves sit outside the
    // baseline (already allocated), so each number is the transient
    // working set of the ingest path alone.
    let (peak_mat_jsonl, data) = peak_above_baseline(|| {
        materialize_catalog(&probe_io::read_catalog_auto(jsonl.as_slice()).unwrap())
    });
    drop(data);
    let (peak_str_jsonl, data) = peak_above_baseline(|| stream_catalog(jsonl.as_slice()).unwrap());
    drop(data);
    let (peak_mat_wtrcat, data) = peak_above_baseline(|| {
        materialize_catalog(&probe_io::read_catalog_auto(wtrcat.as_slice()).unwrap())
    });
    drop(data);
    let (peak_str_wtrcat, data) =
        peak_above_baseline(|| stream_catalog(wtrcat.as_slice()).unwrap());
    eprintln!(
        "{{\"peak_alloc_bytes\":{{\"jsonl_materialized\":{peak_mat_jsonl},\
         \"jsonl_streamed\":{peak_str_jsonl},\"wtrcat_materialized\":{peak_mat_wtrcat},\
         \"wtrcat_streamed\":{peak_str_wtrcat}}}}}"
    );
    assert!(
        peak_str_jsonl < peak_mat_jsonl && peak_str_wtrcat < peak_mat_wtrcat,
        "streaming ingest must peak below materialized"
    );

    let mut g = c.benchmark_group("stream_vs_materialized");
    g.sample_size(10);
    g.bench_function("ingest_jsonl_materialized", |b| {
        b.iter(|| {
            materialize_catalog(&probe_io::read_catalog_auto(black_box(jsonl.as_slice())).unwrap())
        })
    });
    g.bench_function("ingest_jsonl_streamed", |b| {
        b.iter(|| stream_catalog(black_box(jsonl.as_slice())).unwrap())
    });
    g.bench_function("ingest_wtrcat_materialized", |b| {
        b.iter(|| {
            materialize_catalog(&probe_io::read_catalog_auto(black_box(wtrcat.as_slice())).unwrap())
        })
    });
    g.bench_function("ingest_wtrcat_streamed", |b| {
        b.iter(|| stream_catalog(black_box(wtrcat.as_slice())).unwrap())
    });
    g.finish();

    // Analysis suite: one broadcast pass vs per-table re-scans.
    let tacdb = wtr_model::tacdb::TacDatabase::standard();
    let mut g = c.benchmark_group("analysis_suite");
    g.sample_size(10);
    g.bench_function("broadcast_single_pass", |b| {
        b.iter(|| {
            analyze(
                black_box(&data.summaries),
                &data.apns,
                data.window_days,
                &tacdb,
            )
        })
    });
    g.bench_function("per_table_rescans", |b| {
        b.iter(|| {
            analyze_rescan(
                black_box(&data.summaries),
                &data.apns,
                data.window_days,
                &tacdb,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
