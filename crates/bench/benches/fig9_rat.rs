//! E13 — Fig. 9: RAT-usage category shares over the three planes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::rat_usage::{rat_usage, Plane};
use wtr_core::classify::DeviceClass;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let classes = [DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat];
    let mut g = c.benchmark_group("fig9_rat");
    for plane in [Plane::Any, Plane::Data, Plane::Voice] {
        g.bench_function(plane.label(), |b| {
            b.iter(|| {
                rat_usage(
                    black_box(&art.summaries),
                    black_box(&art.classification),
                    black_box(&classes),
                    plane,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
