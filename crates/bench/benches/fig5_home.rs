//! E8/E9 — Fig. 5: home-country structure of inbound roamers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::population;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    c.bench_function("fig5_home_countries", |b| {
        b.iter(|| {
            population::home_countries(black_box(&art.summaries), black_box(&art.classification))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
