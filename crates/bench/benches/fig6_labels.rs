//! E6/E10 — §4.2 label shares + Fig. 6 class × label heatmaps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::population;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let mut g = c.benchmark_group("fig6_labels");
    g.bench_function("daily_label_shares", |b| {
        b.iter(|| population::label_shares(black_box(&art.output.catalog)))
    });
    g.bench_function("class_label_breakdown", |b| {
        b.iter(|| {
            population::class_label_breakdown(
                black_box(&art.summaries),
                black_box(&art.classification),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
