//! E21/E22 — extension analyses: roaming economics and diurnal profiling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::{diurnal, revenue};
use wtr_core::classify::DeviceClass;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let mut g = c.benchmark_group("extensions");
    g.bench_function("e21_inbound_economics", |b| {
        b.iter(|| {
            revenue::inbound_economics(
                black_box(&art.summaries),
                black_box(&art.classification),
                revenue::RateCard::default(),
            )
        })
    });
    g.bench_function("e22_diurnal_profiles", |b| {
        b.iter(|| {
            diurnal::profiles(
                black_box(&art.summaries),
                black_box(&art.classification),
                &[DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat],
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
