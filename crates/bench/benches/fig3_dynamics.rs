//! E3–E5 — Fig. 3: per-device signaling dynamics of the M2M platform.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_m2m;
use wtr_core::analysis::platform;
use wtr_model::operators::well_known;

fn bench(c: &mut Criterion) {
    let txs = bench_m2m();
    let mut g = c.benchmark_group("fig3_dynamics");
    g.bench_function("dynamics_all", |b| {
        b.iter(|| platform::dynamics(black_box(txs), None))
    });
    g.bench_function("dynamics_es_only", |b| {
        b.iter(|| platform::dynamics(black_box(txs), Some(well_known::ES_HMNO)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
