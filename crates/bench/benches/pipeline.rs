//! End-to-end pipeline cost: simulation, probes and wire format.
//!
//! Includes the DESIGN.md ablations that are infrastructure choices
//! rather than figures: anonymization hashing and the compact wire codec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::{bench_m2m, bench_mno};
use wtr_core::classify::Classifier;
use wtr_core::metrics::Ecdf;
use wtr_core::summary::summarize;
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_probes::io as probe_io;
use wtr_probes::wire;
use wtr_scenarios::{M2mScenario, M2mScenarioConfig, MnoScenario, MnoScenarioConfig};
use wtr_sim::par;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("m2m_scenario_400dev_5days", |b| {
        b.iter(|| {
            M2mScenario::new(M2mScenarioConfig {
                devices: 400,
                days: 5,
                seed: 5,
                g4_hole_fraction: 0.05,
            })
            .run()
        })
    });
    g.bench_function("mno_scenario_400dev_5days", |b| {
        b.iter(|| {
            MnoScenario::new(MnoScenarioConfig {
                devices: 400,
                days: 5,
                seed: 5,
                nbiot_meter_fraction: 0.0,
                sunset_2g_uk: false,
                gsma_transparency: false,
                record_loss_fraction: 0.0,
            })
            .run()
        })
    });
    g.finish();

    // Serial vs parallel comparison for the order-stable map-reduce layer
    // (`wtr_sim::par`): same inputs, same byte-identical outputs, the only
    // variable is the thread count. `_t1` pins one worker; `_tN` uses the
    // default (`WTR_THREADS` / available parallelism).
    let art = bench_mno();
    let mut g = c.benchmark_group("par_vs_serial");
    g.sample_size(10);
    g.bench_function("summarize_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| summarize(black_box(&art.output.catalog)));
        par::set_threads(None);
    });
    g.bench_function("summarize_tN", |b| {
        b.iter(|| summarize(black_box(&art.output.catalog)));
    });
    g.bench_function("classify_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| {
            Classifier::new(&art.output.tacdb)
                .classify(black_box(&art.summaries), art.output.catalog.apn_table())
        });
        par::set_threads(None);
    });
    g.bench_function("classify_tN", |b| {
        b.iter(|| {
            Classifier::new(&art.output.tacdb)
                .classify(black_box(&art.summaries), art.output.catalog.apn_table())
        });
    });
    let samples: Vec<f64> = (0..400_000u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64)
        .collect();
    g.bench_function("ecdf_sort_400k_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| Ecdf::new(black_box(samples.clone())));
        par::set_threads(None);
    });
    g.bench_function("ecdf_sort_400k_tN", |b| {
        b.iter(|| Ecdf::new(black_box(samples.clone())));
    });
    g.finish();

    let txs = bench_m2m();
    let encoded = wire::encode_log(txs);
    let mut g = c.benchmark_group("wire");
    g.bench_function("encode", |b| b.iter(|| wire::encode_log(black_box(txs))));
    g.bench_function("decode", |b| {
        b.iter(|| wire::decode_log(black_box(encoded.clone())).unwrap())
    });
    g.finish();

    // Storage-format throughput: catalog JSONL vs columnar WTRCAT, plus
    // the WTRM2M transaction codec as the fixed-width reference. The
    // eprintln reports serialized sizes so a run records the compression
    // ratio next to the timings (BENCH_PR2.json).
    let catalog = &art.output.catalog;
    let mut jsonl = Vec::new();
    probe_io::write_catalog(&mut jsonl, catalog).unwrap();
    let wtrcat = wire::encode_catalog(catalog);
    eprintln!(
        "io_throughput sizes: catalog rows {} | JSONL {} B ({:.1} B/row) | WTRCAT {} B \
         ({:.1} B/row, {:.2}x smaller) | WTRM2M {} txs {} B",
        catalog.len(),
        jsonl.len(),
        jsonl.len() as f64 / catalog.len() as f64,
        wtrcat.len(),
        wtrcat.len() as f64 / catalog.len() as f64,
        jsonl.len() as f64 / wtrcat.len() as f64,
        txs.len(),
        encoded.len(),
    );
    let mut g = c.benchmark_group("io_throughput");
    g.sample_size(10);
    g.bench_function("catalog_jsonl_write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(jsonl.len());
            probe_io::write_catalog(&mut out, black_box(catalog)).unwrap();
            out
        })
    });
    g.bench_function("catalog_jsonl_read", |b| {
        b.iter(|| probe_io::read_catalog(black_box(&jsonl[..])).unwrap())
    });
    // Ablation: same reader with the zero-copy scanner disabled — every
    // line goes through the serde fallback path. The delta is the serde
    // tax the scanner removes.
    g.bench_function("catalog_jsonl_read_serde", |b| {
        b.iter(|| probe_io::read_catalog_serde(black_box(&jsonl[..])).unwrap())
    });
    g.bench_function("catalog_wtrcat_encode", |b| {
        b.iter(|| wire::encode_catalog(black_box(catalog)))
    });
    g.bench_function("catalog_wtrcat_decode", |b| {
        b.iter(|| wire::decode_catalog(black_box(&wtrcat)).unwrap())
    });
    g.bench_function("wtrm2m_encode", |b| {
        b.iter(|| wire::encode_log(black_box(txs)))
    });
    g.bench_function("wtrm2m_decode", |b| {
        b.iter(|| wire::decode_log(black_box(encoded.clone())).unwrap())
    });
    g.finish();

    // Ablation for the intern-table tentpole, on the acceptance-criteria
    // scenario (400 devices / 5 days, heavily repeated APNs): the current
    // per-symbol verdict pipeline vs the pre-PR String path — one
    // `to_ascii_lowercase` allocation plus a full keyword substring
    // rescan per (device, APN) pair, for both the M2M and the consumer
    // keyword lists. Same inputs, same propagation; only the APN
    // representation work differs.
    let abl = MnoScenario::new(MnoScenarioConfig {
        devices: 400,
        days: 5,
        seed: 5,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let mut g = c.benchmark_group("classify_ablation");
    g.sample_size(10);
    g.bench_function("interned_symbols", |b| {
        b.iter(|| {
            let summaries = summarize(black_box(&abl.catalog));
            Classifier::new(&abl.tacdb).classify(&summaries, abl.catalog.apn_table())
        })
    });
    g.bench_function("string_rescan_baseline", |b| {
        use std::collections::{BTreeMap, BTreeSet};
        use wtr_core::keywords::{CONSUMER_KEYWORDS, M2M_KEYWORDS};
        let apns = abl.catalog.apn_table();
        b.iter(|| {
            let summaries = summarize(black_box(&abl.catalog));
            // Reproduce the old representation's cost, removed by the
            // intern table: (a) summarize used to union per-device
            // `BTreeSet<String>` APN sets, cloning every string once per
            // (device, day) row it appeared on…
            let mut string_sets: BTreeMap<u64, BTreeSet<String>> = BTreeMap::new();
            for row in abl.catalog.iter() {
                let set = string_sets.entry(row.user).or_default();
                for &sym in &row.apns {
                    set.insert(apns.resolve(sym).to_owned());
                }
            }
            // …and (b) the classifier recomputed lowercase + substring
            // keyword verdicts per (device, APN) pair (steps 1, 3, 4).
            let mut verdicts = Vec::with_capacity(64);
            for (user, set) in &string_sets {
                for apn in set {
                    let lower = apn.to_ascii_lowercase();
                    let m2m = M2M_KEYWORDS.iter().any(|(kw, _)| lower.contains(kw));
                    let consumer = CONSUMER_KEYWORDS.iter().any(|kw| lower.contains(kw));
                    verdicts.push((*user, m2m, consumer));
                }
            }
            let classification = Classifier::new(&abl.tacdb).classify(&summaries, apns);
            (verdicts, classification)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("codecs");
    g.bench_function("imsi_parse", |b| {
        b.iter(|| {
            black_box("204040123456789")
                .parse::<wtr_model::ids::Imsi>()
                .unwrap()
        })
    });
    g.bench_function("imei_parse_with_luhn", |b| {
        b.iter(|| {
            black_box("490154203237518")
                .parse::<wtr_model::ids::Imei>()
                .unwrap()
        })
    });
    g.bench_function("apn_parse", |b| {
        b.iter(|| {
            black_box("smhp.centricaplc.com.mnc004.mcc204.gprs")
                .parse::<wtr_model::apn::Apn>()
                .unwrap()
        })
    });
    g.bench_function("roaming_label_derive", |b| {
        use wtr_model::operators::{well_known, OperatorRegistry};
        use wtr_model::roaming::RoamingLabel;
        let registry = OperatorRegistry::standard(3);
        b.iter(|| {
            RoamingLabel::derive(
                well_known::UK_STUDIED_MNO,
                black_box(&registry),
                well_known::NL_SMART_METER_HMNO,
                well_known::UK_STUDIED_MNO,
            )
        })
    });
    g.finish();

    c.bench_function("anonymize_hash", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            anonymize_u64(AnonKey::FIXED, black_box(x))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
