//! End-to-end pipeline cost: simulation, probes and wire format.
//!
//! Includes the DESIGN.md ablations that are infrastructure choices
//! rather than figures: anonymization hashing and the compact wire codec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::{bench_m2m, bench_mno};
use wtr_core::classify::Classifier;
use wtr_core::metrics::Ecdf;
use wtr_core::summary::summarize;
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_probes::wire;
use wtr_scenarios::{M2mScenario, M2mScenarioConfig, MnoScenario, MnoScenarioConfig};
use wtr_sim::par;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("m2m_scenario_400dev_5days", |b| {
        b.iter(|| {
            M2mScenario::new(M2mScenarioConfig {
                devices: 400,
                days: 5,
                seed: 5,
                g4_hole_fraction: 0.05,
            })
            .run()
        })
    });
    g.bench_function("mno_scenario_400dev_5days", |b| {
        b.iter(|| {
            MnoScenario::new(MnoScenarioConfig {
                devices: 400,
                days: 5,
                seed: 5,
                nbiot_meter_fraction: 0.0,
                sunset_2g_uk: false,
                gsma_transparency: false,
                record_loss_fraction: 0.0,
            })
            .run()
        })
    });
    g.finish();

    // Serial vs parallel comparison for the order-stable map-reduce layer
    // (`wtr_sim::par`): same inputs, same byte-identical outputs, the only
    // variable is the thread count. `_t1` pins one worker; `_tN` uses the
    // default (`WTR_THREADS` / available parallelism).
    let art = bench_mno();
    let mut g = c.benchmark_group("par_vs_serial");
    g.sample_size(10);
    g.bench_function("summarize_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| summarize(black_box(&art.output.catalog)));
        par::set_threads(None);
    });
    g.bench_function("summarize_tN", |b| {
        b.iter(|| summarize(black_box(&art.output.catalog)));
    });
    g.bench_function("classify_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| Classifier::new(&art.output.tacdb).classify(black_box(&art.summaries)));
        par::set_threads(None);
    });
    g.bench_function("classify_tN", |b| {
        b.iter(|| Classifier::new(&art.output.tacdb).classify(black_box(&art.summaries)));
    });
    let samples: Vec<f64> = (0..400_000u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64)
        .collect();
    g.bench_function("ecdf_sort_400k_t1", |b| {
        par::set_threads(Some(1));
        b.iter(|| Ecdf::new(black_box(samples.clone())));
        par::set_threads(None);
    });
    g.bench_function("ecdf_sort_400k_tN", |b| {
        b.iter(|| Ecdf::new(black_box(samples.clone())));
    });
    g.finish();

    let txs = bench_m2m();
    let encoded = wire::encode_log(txs);
    let mut g = c.benchmark_group("wire");
    g.bench_function("encode", |b| b.iter(|| wire::encode_log(black_box(txs))));
    g.bench_function("decode", |b| {
        b.iter(|| wire::decode_log(black_box(encoded.clone())).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("codecs");
    g.bench_function("imsi_parse", |b| {
        b.iter(|| {
            black_box("204040123456789")
                .parse::<wtr_model::ids::Imsi>()
                .unwrap()
        })
    });
    g.bench_function("imei_parse_with_luhn", |b| {
        b.iter(|| {
            black_box("490154203237518")
                .parse::<wtr_model::ids::Imei>()
                .unwrap()
        })
    });
    g.bench_function("apn_parse", |b| {
        b.iter(|| {
            black_box("smhp.centricaplc.com.mnc004.mcc204.gprs")
                .parse::<wtr_model::apn::Apn>()
                .unwrap()
        })
    });
    g.bench_function("roaming_label_derive", |b| {
        use wtr_model::operators::{well_known, OperatorRegistry};
        use wtr_model::roaming::RoamingLabel;
        let registry = OperatorRegistry::standard(3);
        b.iter(|| {
            RoamingLabel::derive(
                well_known::UK_STUDIED_MNO,
                black_box(&registry),
                well_known::NL_SMART_METER_HMNO,
                well_known::UK_STUDIED_MNO,
            )
        })
    });
    g.finish();

    c.bench_function("anonymize_hash", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            anonymize_u64(AnonKey::FIXED, black_box(x))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
