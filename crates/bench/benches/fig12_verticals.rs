//! E18 — Fig. 12: connected cars vs smart meters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::verticals;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    c.bench_function("fig12_verticals_compare", |b| {
        b.iter(|| verticals::compare(black_box(&art.summaries), art.output.catalog.apn_table()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
