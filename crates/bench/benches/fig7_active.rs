//! E11 — Fig. 7: active-days distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::{bench_mno, MnoArtifacts};
use wtr_core::analysis::activity;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let pairs = MnoArtifacts::standard_pairs();
    c.bench_function("fig7_active_days", |b| {
        b.iter(|| {
            activity::active_days(
                black_box(&art.summaries),
                black_box(&art.classification),
                black_box(&pairs),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
