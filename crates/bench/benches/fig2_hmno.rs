//! E1/E2 — §3.2 table + Fig. 2: HMNO footprint from the transaction log.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_m2m;
use wtr_core::analysis::platform;

fn bench(c: &mut Criterion) {
    let txs = bench_m2m();
    let mut g = c.benchmark_group("fig2_hmno");
    g.bench_function("per_device_aggregation", |b| {
        b.iter(|| platform::per_device(black_box(txs)))
    });
    g.bench_function("overview", |b| {
        b.iter(|| platform::overview(black_box(txs)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
