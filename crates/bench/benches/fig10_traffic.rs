//! E14 — Fig. 10: per-population traffic distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::{bench_mno, MnoArtifacts};
use wtr_core::analysis::traffic::{traffic_dist, TrafficMetric};

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let pairs = MnoArtifacts::standard_pairs();
    let mut g = c.benchmark_group("fig10_traffic");
    for (name, metric) in [
        ("signaling", TrafficMetric::SignalingPerDay),
        ("calls", TrafficMetric::CallsPerDay),
        ("bytes", TrafficMetric::BytesPerDay),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                traffic_dist(
                    black_box(&art.summaries),
                    black_box(&art.classification),
                    black_box(&pairs),
                    metric,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
