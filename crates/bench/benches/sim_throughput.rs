//! Sharded simulation throughput: the PR-4/PR-5 acceptance bench.
//!
//! Times `MnoScenario::run_sharded` at shards = 1/2/8 on two fixtures
//! (the 400x5 acceptance scenario and the 2500x22 analysis-scale one),
//! plus the JSONL ingest hot path. One-shot wall-clock numbers are
//! printed as JSON for `BENCH_PR*.json`; Criterion then times the same
//! paths properly. The PR-5 summary adds the two ablation axes: the
//! zero-copy scanner on/off (`read_catalog` vs `read_catalog_serde`)
//! and the tree-reduction merge on/off (`WTR_SERIAL_MERGE=1` forces
//! the serial shard-order fold).
//!
//! Acceptance: on the 1-CPU bench host, `run_sharded(1)` — one engine,
//! inline on the calling thread — must stay within 5% of the pre-PR
//! serial engine (recorded at 65.0 ms for 400x5 before the dispatch
//! tie-break moved to `(time, agent, per-agent seq)`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wtr_probes::io as probe_io;
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};

fn config(devices: usize, days: u32, seed: u64) -> MnoScenarioConfig {
    MnoScenarioConfig {
        devices,
        days,
        seed,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    }
}

/// Wall-clock of `f` averaged over `iters` runs, in milliseconds.
fn time_ms<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1_000.0 / f64::from(iters)
}

fn bench(c: &mut Criterion) {
    // --- One-shot JSON summary (BENCH_PR4.json) ---------------------
    let small = config(400, 5, 7);
    // Warm caches / lazy statics so the first timed shard count isn't
    // penalized for cold-start work the others skip.
    black_box(MnoScenario::new(small.clone()).run_sharded(1));
    let mut parts = Vec::new();
    for shards in [1usize, 2, 8] {
        let scenario = MnoScenario::new(small.clone());
        let ms = time_ms(10, || scenario.run_sharded(shards));
        parts.push(format!("\"sim_400x5_shards{shards}_ms\":{ms:.1}"));
    }
    // Merge-tail ablation on the analysis-scale fixture: tree reduction
    // (default) vs the serial shard-order fold (WTR_SERIAL_MERGE=1).
    let big = config(2_500, 22, 99);
    for shards in [1usize, 8] {
        let scenario = MnoScenario::new(big.clone());
        let ms = time_ms(2, || scenario.run_sharded(shards));
        parts.push(format!("\"sim_2500x22_shards{shards}_ms\":{ms:.1}"));
    }
    std::env::set_var("WTR_SERIAL_MERGE", "1");
    let scenario = MnoScenario::new(big.clone());
    let serial_merge_ms = time_ms(2, || scenario.run_sharded(8));
    std::env::remove_var("WTR_SERIAL_MERGE");
    parts.push(format!(
        "\"sim_2500x22_shards8_serial_merge_ms\":{serial_merge_ms:.1}"
    ));
    // JSONL ingest, scanner on vs off (BENCH_PR4 recorded 1108.5 ms for
    // the serde-per-line reader on the same 2500x22 fixture).
    let output = MnoScenario::new(big.clone()).run();
    let mut jsonl = Vec::new();
    probe_io::write_catalog(&mut jsonl, &output.catalog).unwrap();
    let ingest_ms = time_ms(3, || probe_io::read_catalog(jsonl.as_slice()).unwrap());
    parts.push(format!("\"jsonl_read_catalog_ms\":{ingest_ms:.1}"));
    let serde_ms = time_ms(3, || {
        probe_io::read_catalog_serde(jsonl.as_slice()).unwrap()
    });
    parts.push(format!("\"jsonl_read_catalog_serde_ms\":{serde_ms:.1}"));
    eprintln!("{{{}}}", parts.join(","));

    // --- Criterion groups -------------------------------------------
    let mut g = c.benchmark_group("sim_throughput_400x5");
    g.sample_size(10);
    for shards in [1usize, 2, 8] {
        let scenario = MnoScenario::new(small.clone());
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| black_box(&scenario).run_sharded(shards))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sim_throughput_2500x22");
    g.sample_size(10);
    for shards in [1usize, 2, 8] {
        let scenario = MnoScenario::new(big.clone());
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| black_box(&scenario).run_sharded(shards))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("jsonl_ingest");
    g.sample_size(10);
    g.bench_function("read_catalog_borrowed_lines", |b| {
        b.iter(|| probe_io::read_catalog(black_box(jsonl.as_slice())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
