//! Sharded simulation throughput: the PR-4/PR-5/PR-7 acceptance bench.
//!
//! Times `MnoScenario::run_sharded` at shards = 1/2/8 on two fixtures
//! (the 400x5 acceptance scenario and the 2500x22 analysis-scale one),
//! plus the JSONL ingest hot path. One-shot wall-clock numbers are
//! printed as JSON for `BENCH_PR*.json` (skippable with
//! `WTR_BENCH_SUMMARY=0` so CI smoke runs stay cheap); Criterion then
//! times the same paths properly. The PR-5 summary adds two ablation
//! axes: the zero-copy scanner on/off (`read_catalog` vs
//! `read_catalog_serde`) and the tree-reduction merge on/off
//! (`WTR_SERIAL_MERGE=1` forces the serial shard-order fold). PR 7 adds
//! the scheduler axis: `sched_ablation` runs the 2500x22 scenario on
//! the calendar queue vs the reference heap (`WTR_HEAP_SCHED=1`), and
//! `sched_storm` times a firmware-campaign storm — N agents all waking
//! in the same second, per Finley & Vesselkov's synchronized
//! firmware-update signaling storms — where the heap's per-pop
//! comparison cost is maximal (every sift compares equal times and
//! falls through to the tie-break fields). PR 8 adds the behavior axis:
//! `behavior_dispatch` runs both fixtures through the matrix interpreter
//! (default) vs the hand-coded legacy branches
//! (`WTR_LEGACY_BEHAVIOR=1`); the refactor's acceptance requires the
//! matrix arm within noise of legacy.
//!
//! Acceptance: on the 1-CPU bench host, `run_sharded(1)` — one engine,
//! inline on the calling thread — must stay within 5% of the pre-PR
//! serial engine (recorded at 65.0 ms for 400x5 before the dispatch
//! tie-break moved to `(time, agent, per-agent seq)`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wtr_model::time::{SimDuration, SimTime};
use wtr_probes::io as probe_io;
use wtr_scenarios::{MnoScenario, MnoScenarioConfig};
use wtr_sim::engine::{Agent, AgentId, Engine, Scheduler, SchedulerKind, WakeTag};

fn config(devices: usize, days: u32, seed: u64) -> MnoScenarioConfig {
    MnoScenarioConfig {
        devices,
        days,
        seed,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    }
}

/// Wall-clock of `f` averaged over `iters` runs, in milliseconds.
fn time_ms<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1_000.0 / f64::from(iters)
}

/// Firmware-campaign storm fixture: `agents` devices all waking at the
/// same `bursts` instants, each re-scheduling `budget` same-instant
/// follow-ups. Every pop ties on time and resolves on the
/// `(agent, seq, tag)` tail of the dispatch key.
struct StormAgent {
    bursts: Vec<u64>,
    budget: u32,
}

impl Agent<u64> for StormAgent {
    fn init(&mut self, id: AgentId, _w: &mut u64, s: &mut Scheduler) {
        for t in &self.bursts {
            s.wake_at(id, WakeTag(0), SimTime::from_secs(*t));
        }
    }
    fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut u64, s: &mut Scheduler) {
        *w = w.wrapping_add(u64::from(id.0) ^ s.now().as_secs());
        if tag.0 < self.budget {
            s.wake_at(id, WakeTag(tag.0 + 1), s.now() + SimDuration::from_secs(0));
        }
    }
}

/// Runs the storm on the given scheduler and returns the world checksum
/// (kept live so the dispatch loop can't be optimized away).
fn run_storm(kind: SchedulerKind, agents: u32) -> u64 {
    let mut engine = Engine::with_scheduler(0u64, SimTime::from_secs(7_200), kind);
    for _ in 0..agents {
        engine.add_agent(StormAgent {
            bursts: vec![60, 1_800, 7_199],
            budget: 2,
        });
    }
    engine.run()
}

fn bench(c: &mut Criterion) {
    let small = config(400, 5, 7);
    let big = config(2_500, 22, 99);
    // Warm caches / lazy statics so the first timed shard count isn't
    // penalized for cold-start work the others skip.
    black_box(MnoScenario::new(small.clone()).run_sharded(1));

    // --- One-shot JSON summary (BENCH_PR4/5/7.json) -----------------
    // Skippable (WTR_BENCH_SUMMARY=0) so CI smoke runs pay only for the
    // Criterion groups they actually filter down to.
    if std::env::var("WTR_BENCH_SUMMARY").as_deref() != Ok("0") {
        let mut parts = Vec::new();
        for shards in [1usize, 2, 8] {
            let scenario = MnoScenario::new(small.clone());
            let ms = time_ms(10, || scenario.run_sharded(shards));
            parts.push(format!("\"sim_400x5_shards{shards}_ms\":{ms:.1}"));
        }
        // Scheduler ablation on the analysis-scale fixture: calendar
        // queue (default) vs the reference binary heap
        // (WTR_HEAP_SCHED=1), at 1 shard (pure dispatch cost) and 8.
        for shards in [1usize, 8] {
            let scenario = MnoScenario::new(big.clone());
            let ms = time_ms(2, || scenario.run_sharded(shards));
            parts.push(format!("\"sim_2500x22_shards{shards}_ms\":{ms:.1}"));
            std::env::set_var("WTR_HEAP_SCHED", "1");
            let scenario = MnoScenario::new(big.clone());
            let heap_ms = time_ms(2, || scenario.run_sharded(shards));
            std::env::remove_var("WTR_HEAP_SCHED");
            parts.push(format!(
                "\"sim_2500x22_shards{shards}_heap_sched_ms\":{heap_ms:.1}"
            ));
        }
        // Merge-tail ablation: tree reduction (default) vs the serial
        // shard-order fold (WTR_SERIAL_MERGE=1).
        std::env::set_var("WTR_SERIAL_MERGE", "1");
        let scenario = MnoScenario::new(big.clone());
        let serial_merge_ms = time_ms(2, || scenario.run_sharded(8));
        std::env::remove_var("WTR_SERIAL_MERGE");
        parts.push(format!(
            "\"sim_2500x22_shards8_serial_merge_ms\":{serial_merge_ms:.1}"
        ));
        // Behavior ablation: matrix interpreter (default) vs the legacy
        // hand-coded wake branches (WTR_LEGACY_BEHAVIOR=1), both
        // fixtures, 1 shard (pure per-wake dispatch cost).
        for (name, cfg, iters) in [("400x5", &small, 10u32), ("2500x22", &big, 2)] {
            let scenario = MnoScenario::new(cfg.clone());
            let matrix_ms = time_ms(iters, || scenario.run_sharded(1));
            parts.push(format!("\"behavior_{name}_matrix_ms\":{matrix_ms:.1}"));
            std::env::set_var("WTR_LEGACY_BEHAVIOR", "1");
            let scenario = MnoScenario::new(cfg.clone());
            let legacy_ms = time_ms(iters, || scenario.run_sharded(1));
            std::env::remove_var("WTR_LEGACY_BEHAVIOR");
            parts.push(format!("\"behavior_{name}_legacy_ms\":{legacy_ms:.1}"));
        }
        // Firmware-storm worst case: 20k agents, all wake-ups landing on
        // three exact instants with same-instant re-schedules.
        let storm_cal_ms = time_ms(3, || run_storm(SchedulerKind::Calendar, 20_000));
        parts.push(format!("\"sched_storm_20k_calendar_ms\":{storm_cal_ms:.1}"));
        let storm_heap_ms = time_ms(3, || run_storm(SchedulerKind::Heap, 20_000));
        parts.push(format!("\"sched_storm_20k_heap_ms\":{storm_heap_ms:.1}"));
        // JSONL ingest, scanner on vs off (BENCH_PR4 recorded 1108.5 ms
        // for the serde-per-line reader on the same 2500x22 fixture).
        let output = MnoScenario::new(big.clone()).run();
        let mut jsonl = Vec::new();
        probe_io::write_catalog(&mut jsonl, &output.catalog).unwrap();
        let ingest_ms = time_ms(3, || probe_io::read_catalog(jsonl.as_slice()).unwrap());
        parts.push(format!("\"jsonl_read_catalog_ms\":{ingest_ms:.1}"));
        let serde_ms = time_ms(3, || {
            probe_io::read_catalog_serde(jsonl.as_slice()).unwrap()
        });
        parts.push(format!("\"jsonl_read_catalog_serde_ms\":{serde_ms:.1}"));
        eprintln!("{{{}}}", parts.join(","));
    }

    // --- Criterion groups -------------------------------------------
    let mut g = c.benchmark_group("sim_throughput_400x5");
    g.sample_size(10);
    for shards in [1usize, 2, 8] {
        let scenario = MnoScenario::new(small.clone());
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| black_box(&scenario).run_sharded(shards))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sim_throughput_2500x22");
    g.sample_size(10);
    for shards in [1usize, 2, 8] {
        let scenario = MnoScenario::new(big.clone());
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| black_box(&scenario).run_sharded(shards))
        });
    }
    g.finish();

    // Scheduler ablation pair: the same 2500x22 scenario dispatched by
    // the calendar queue (default) vs the reference binary heap. The
    // heap arm flips `WTR_HEAP_SCHED` only around its own iterations so
    // the two arms stay directly comparable.
    let mut g = c.benchmark_group("sched_ablation");
    g.sample_size(10);
    let scenario = MnoScenario::new(big.clone());
    g.bench_function("2500x22_shards1_calendar", |b| {
        b.iter(|| black_box(&scenario).run_sharded(1))
    });
    g.bench_function("2500x22_shards1_heap", |b| {
        std::env::set_var("WTR_HEAP_SCHED", "1");
        b.iter(|| black_box(&scenario).run_sharded(1));
        std::env::remove_var("WTR_HEAP_SCHED");
    });
    g.finish();

    // Behavior ablation pair: the same scenarios stepped by the matrix
    // interpreter (default) vs the legacy hand-coded branches. Agents
    // read WTR_LEGACY_BEHAVIOR at construction — inside run_sharded — so
    // flipping it around the iterations selects the path per arm.
    let mut g = c.benchmark_group("behavior_dispatch");
    g.sample_size(10);
    for (name, cfg) in [("400x5", &small), ("2500x22", &big)] {
        let scenario = MnoScenario::new(cfg.clone());
        g.bench_function(&format!("{name}_matrix"), |b| {
            b.iter(|| black_box(&scenario).run_sharded(1))
        });
        g.bench_function(&format!("{name}_legacy"), |b| {
            std::env::set_var("WTR_LEGACY_BEHAVIOR", "1");
            b.iter(|| black_box(&scenario).run_sharded(1));
            std::env::remove_var("WTR_LEGACY_BEHAVIOR");
        });
    }
    g.finish();

    // Firmware-storm microbench: every wake-up in the run lands on one
    // of three exact seconds (synchronized firmware-update campaigns per
    // Finley & Vesselkov), so dispatch order is decided entirely by the
    // tie-break tail of the key. Worst case for heap sift chains; the
    // calendar sorts each burst once at width 1 s.
    let mut g = c.benchmark_group("sched_storm");
    g.sample_size(10);
    g.bench_function("20k_agents_calendar", |b| {
        b.iter(|| run_storm(SchedulerKind::Calendar, black_box(20_000)))
    });
    g.bench_function("20k_agents_heap", |b| {
        b.iter(|| run_storm(SchedulerKind::Heap, black_box(20_000)))
    });
    g.finish();

    let output = MnoScenario::new(big).run();
    let mut jsonl = Vec::new();
    probe_io::write_catalog(&mut jsonl, &output.catalog).unwrap();
    let mut g = c.benchmark_group("jsonl_ingest");
    g.sample_size(10);
    g.bench_function("read_catalog_borrowed_lines", |b| {
        b.iter(|| probe_io::read_catalog(black_box(jsonl.as_slice())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
