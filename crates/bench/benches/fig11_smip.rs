//! E15–E17 — Fig. 11 / §7.1: SMIP identification and group statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::analysis::smip;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let pop = smip::identify(
        &art.summaries,
        &art.output.tacdb,
        art.output.catalog.apn_table(),
    );
    let mut g = c.benchmark_group("fig11_smip");
    g.bench_function("identify", |b| {
        b.iter(|| {
            smip::identify(
                black_box(&art.summaries),
                black_box(&art.output.tacdb),
                art.output.catalog.apn_table(),
            )
        })
    });
    g.bench_function("group_stats", |b| {
        b.iter(|| {
            (
                smip::group_stats(black_box(&art.summaries), &pop.native, art.output.days),
                smip::group_stats(black_box(&art.summaries), &pop.roaming, art.output.days),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
