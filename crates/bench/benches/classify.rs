//! E7/E19 — §4.3: the classification pipeline and its ablations.
//!
//! The ablation axis (full pipeline vs APN-only vs vendor-only) is the
//! design choice DESIGN.md calls out: property propagation is what rescues
//! the ~21% APN-less devices, at the cost measured here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtr_bench::bench_mno;
use wtr_core::baseline::{apn_only_baseline, vendor_baseline};
use wtr_core::classify::Classifier;
use wtr_core::summary::summarize;

fn bench(c: &mut Criterion) {
    let art = bench_mno();
    let mut g = c.benchmark_group("classify");
    g.bench_function("summarize_catalog", |b| {
        b.iter(|| summarize(black_box(&art.output.catalog)))
    });
    g.bench_function("full_pipeline", |b| {
        b.iter(|| {
            Classifier::new(&art.output.tacdb)
                .classify(black_box(&art.summaries), art.output.catalog.apn_table())
        })
    });
    g.bench_function("ablation_apn_only", |b| {
        b.iter(|| {
            apn_only_baseline(
                &art.output.tacdb,
                black_box(&art.summaries),
                art.output.catalog.apn_table(),
            )
        })
    });
    g.bench_function("ablation_vendor_only", |b| {
        b.iter(|| vendor_baseline(&art.output.tacdb, black_box(&art.summaries)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
