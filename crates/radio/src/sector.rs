//! Sector identifiers and the computed sector grid.
//!
//! A [`SectorId`] packs `(PLMN, RAT, grid x, grid y)` into a single `u64`.
//! Given an operator's [`SectorGrid`] (deployment geometry + per-RAT
//! density), any position maps to a sector id in `O(1)`, and any sector id
//! decodes back to the sector's coordinates — which is all the MNO sector
//! catalog provides the paper's mobility analysis (§5.3).

use crate::geo::{CountryGeometry, GeoPoint};
use serde::{Deserialize, Serialize};
use std::fmt;
use wtr_model::ids::Plmn;
use wtr_model::rat::Rat;

/// A radio sector: one cell of one RAT of one operator.
///
/// Bit layout (low → high):
/// `grid_y:14 | grid_x:14 | rat:2 | plmn_packed:21` (51 bits used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SectorId(u64);

const GRID_BITS: u32 = 14;
const GRID_MASK: u64 = (1 << GRID_BITS) - 1;

impl SectorId {
    fn new(plmn: Plmn, rat: Rat, gx: u16, gy: u16) -> Self {
        debug_assert!(gx as u64 <= GRID_MASK && gy as u64 <= GRID_MASK);
        let rat_bits = match rat {
            Rat::G2 => 0u64,
            Rat::G3 => 1,
            Rat::G4 => 2,
            Rat::NbIot => 3,
        };
        let v = gy as u64
            | ((gx as u64) << GRID_BITS)
            | (rat_bits << (2 * GRID_BITS))
            | ((plmn.packed() as u64) << (2 * GRID_BITS + 2));
        SectorId(v)
    }

    /// The raw packed value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// RAT of this sector.
    pub fn rat(self) -> Rat {
        match (self.0 >> (2 * GRID_BITS)) & 0b11 {
            0 => Rat::G2,
            1 => Rat::G3,
            2 => Rat::G4,
            _ => Rat::NbIot,
        }
    }

    /// Packed PLMN key of the owning operator (see
    /// [`Plmn::packed`]). The full PLMN is recoverable through the
    /// operator registry when needed; analyses only compare keys.
    pub fn plmn_key(self) -> u32 {
        (self.0 >> (2 * GRID_BITS + 2)) as u32
    }

    fn grid_xy(self) -> (u16, u16) {
        (
            ((self.0 >> GRID_BITS) & GRID_MASK) as u16,
            (self.0 & GRID_MASK) as u16,
        )
    }
}

impl fmt::Display for SectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (x, y) = self.grid_xy();
        write!(
            f,
            "sec[{}/{}@{},{}]",
            self.plmn_key(),
            self.rat().label(),
            x,
            y
        )
    }
}

/// Grid spacing in degrees for each RAT.
///
/// Denser grids for newer generations: a 4G deployment has more, smaller
/// cells than a 2G one. Spacing determines how often a *moving* device
/// changes sector — the lever behind the Fig. 8 / Fig. 12 mobility
/// contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpacing {
    /// 2G inter-sector spacing in degrees (~wide-area macro cells).
    pub g2: f64,
    /// 3G spacing.
    pub g3: f64,
    /// 4G spacing.
    pub g4: f64,
    /// NB-IoT spacing: LPWA carriers ride on a subset of 4G sites but
    /// reach much further (high coupling loss budget), so cells are wide.
    pub nbiot: f64,
}

impl Default for GridSpacing {
    fn default() -> Self {
        // ≈ 22 km / 11 km / 5.5 km at mid latitudes.
        GridSpacing {
            g2: 0.20,
            g3: 0.10,
            g4: 0.05,
            nbiot: 0.25,
        }
    }
}

impl GridSpacing {
    /// Spacing for a RAT.
    pub fn for_rat(&self, rat: Rat) -> f64 {
        match rat {
            Rat::G2 => self.g2,
            Rat::G3 => self.g3,
            Rat::G4 => self.g4,
            Rat::NbIot => self.nbiot,
        }
    }
}

/// The computed sector grid of one operator's deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectorGrid {
    plmn: Plmn,
    geometry: CountryGeometry,
    spacing: GridSpacing,
}

impl SectorGrid {
    /// Creates a grid for `plmn` deployed over `geometry`.
    pub fn new(plmn: Plmn, geometry: CountryGeometry, spacing: GridSpacing) -> Self {
        SectorGrid {
            plmn,
            geometry,
            spacing,
        }
    }

    /// Owning operator.
    pub fn plmn(&self) -> Plmn {
        self.plmn
    }

    /// Deployment geometry.
    pub fn geometry(&self) -> &CountryGeometry {
        &self.geometry
    }

    /// The sector serving position `p` on `rat`. Positions outside the
    /// deployment rectangle snap to the nearest edge sector (a device on a
    /// border still gets service from the border cell).
    pub fn sector_at(&self, p: GeoPoint, rat: Rat) -> SectorId {
        let p = self.geometry.clamp(p);
        let s = self.spacing.for_rat(rat);
        let west = self.geometry.center.lon - self.geometry.half_lon;
        let south = self.geometry.center.lat - self.geometry.half_lat;
        let gx = (((p.lon - west) / s).floor() as i64).clamp(0, GRID_MASK as i64) as u16;
        let gy = (((p.lat - south) / s).floor() as i64).clamp(0, GRID_MASK as i64) as u16;
        SectorId::new(self.plmn, rat, gx, gy)
    }

    /// Coordinates of a sector's centre (the "sector coordinates provided
    /// by the MNO sectors catalog", §4.1). Must only be called with ids
    /// minted by a grid with identical geometry/spacing.
    pub fn position_of(&self, id: SectorId) -> GeoPoint {
        let (gx, gy) = id.grid_xy();
        let s = self.spacing.for_rat(id.rat());
        let west = self.geometry.center.lon - self.geometry.half_lon;
        let south = self.geometry.center.lat - self.geometry.half_lat;
        GeoPoint::new(
            (south + (gy as f64 + 0.5) * s).clamp(-90.0, 90.0),
            (west + (gx as f64 + 0.5) * s).clamp(-180.0, 180.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::country::Country;

    fn grid() -> SectorGrid {
        let geom = CountryGeometry::of(Country::by_iso("GB").unwrap());
        SectorGrid::new(Plmn::of(234, 30), geom, GridSpacing::default())
    }

    #[test]
    fn same_position_same_sector() {
        let g = grid();
        let p = GeoPoint::new(52.5, -1.0);
        assert_eq!(g.sector_at(p, Rat::G2), g.sector_at(p, Rat::G2));
    }

    #[test]
    fn different_rats_different_sectors() {
        let g = grid();
        let p = GeoPoint::new(52.5, -1.0);
        let s2 = g.sector_at(p, Rat::G2);
        let s4 = g.sector_at(p, Rat::G4);
        assert_ne!(s2, s4);
        assert_eq!(s2.rat(), Rat::G2);
        assert_eq!(s4.rat(), Rat::G4);
    }

    #[test]
    fn decoded_position_is_near_query_point() {
        let g = grid();
        let p = GeoPoint::new(52.5, -1.0);
        for rat in Rat::ALL {
            let sec = g.sector_at(p, rat);
            let pos = g.position_of(sec);
            // Sector centre within one diagonal of the query point.
            let max_km = 1.6 * GridSpacing::default().for_rat(rat) * 111.0;
            assert!(p.distance_km(pos) <= max_km, "{rat}: {p} vs {pos}");
        }
    }

    #[test]
    fn small_movement_keeps_sector_large_movement_changes_it() {
        let g = grid();
        let p = GeoPoint::new(52.5004, -1.0004);
        let near = p.offset(0.001, 0.001);
        let far = p.offset(0.5, 0.5);
        assert_eq!(g.sector_at(p, Rat::G2), g.sector_at(near, Rat::G2));
        assert_ne!(g.sector_at(p, Rat::G2), g.sector_at(far, Rat::G2));
    }

    #[test]
    fn operators_do_not_share_sectors() {
        let geom = CountryGeometry::of(Country::by_iso("GB").unwrap());
        let a = SectorGrid::new(Plmn::of(234, 30), geom, GridSpacing::default());
        let b = SectorGrid::new(Plmn::of(234, 10), geom, GridSpacing::default());
        let p = GeoPoint::new(52.5, -1.0);
        assert_ne!(a.sector_at(p, Rat::G2), b.sector_at(p, Rat::G2));
    }

    #[test]
    fn out_of_country_position_snaps_to_edge() {
        let g = grid();
        let far_away = GeoPoint::new(-30.0, 140.0);
        let sec = g.sector_at(far_away, Rat::G2);
        let pos = g.position_of(sec);
        assert!(g.geometry().contains(GeoPoint::new(
            pos.lat.clamp(
                g.geometry().center.lat - g.geometry().half_lat,
                g.geometry().center.lat + g.geometry().half_lat
            ),
            pos.lon.clamp(
                g.geometry().center.lon - g.geometry().half_lon,
                g.geometry().center.lon + g.geometry().half_lon
            ),
        )));
    }

    #[test]
    fn sector_id_display_is_informative() {
        let g = grid();
        let s = g.sector_at(GeoPoint::new(52.5, -1.0), Rat::G4);
        let text = s.to_string();
        assert!(text.contains("4G"), "{text}");
    }

    #[test]
    fn grid_denser_for_newer_rats() {
        // A straight-line walk must cross at least as many 4G sectors as
        // 2G sectors.
        let g = grid();
        let mut seen2 = std::collections::HashSet::new();
        let mut seen4 = std::collections::HashSet::new();
        for i in 0..200 {
            let p = GeoPoint::new(52.0 + i as f64 * 0.005, -1.0);
            seen2.insert(g.sector_at(p, Rat::G2));
            seen4.insert(g.sector_at(p, Rat::G4));
        }
        assert!(seen4.len() > seen2.len());
    }
}
