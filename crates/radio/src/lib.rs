//! # wtr-radio — radio access network model
//!
//! Models the parts of the RAN the paper's datasets observe: **geo-located
//! radio sectors** per operator and RAT, and the mapping from a device's
//! physical position to the sector handling it.
//!
//! The paper computes device mobility (weighted centroid + radius of
//! gyration, §5.3) purely from "the physical coordinates of the cell
//! sectors to which devices connect", so the simulator needs sectors with
//! coordinates — nothing more of the radio layer. Design follows the
//! smoltcp ethos: sectors are *computed, not stored*. A [`SectorId`]
//! algebraically encodes (PLMN, RAT, grid cell); its position is decoded on
//! demand, so a nationwide deployment costs zero memory and lookups are
//! `O(1)`.
//!
//! Modules:
//! * [`geo`] — latitude/longitude points, haversine distance, synthetic
//!   country geometry;
//! * [`sector`] — sector identifiers and the grid codec;
//! * [`network`] — per-operator radio networks, sector selection, coverage
//!   holes (fault injection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod network;
pub mod sector;

pub use geo::{CountryGeometry, GeoPoint};
pub use network::{CoverageFaults, RadioNetwork};
pub use sector::{SectorGrid, SectorId};
