//! Per-operator radio networks: RAT support, sector selection and coverage
//! faults.
//!
//! A [`RadioNetwork`] is what a device "sees" of one operator: which RATs
//! the operator deploys, which sector would serve a given position, and
//! whether that sector currently has coverage. Coverage holes are the
//! radio-layer fault-injection hook (smoltcp's `--drop-chance` idiom): a
//! deterministic fraction of grid cells per RAT are dead, letting scenarios
//! reproduce devices that fail 4G attachment and fall back to other
//! networks (§3.3) without any global mutable state.

use crate::geo::{CountryGeometry, GeoPoint};
use crate::sector::{GridSpacing, SectorGrid, SectorId};
use serde::{Deserialize, Serialize};
use wtr_model::hash::mix64;
use wtr_model::ids::Plmn;
use wtr_model::rat::{Rat, RatSet};

/// Deterministic coverage-hole configuration.
///
/// A sector is a hole when `hash(sector, salt) < threshold`. Holes are a
/// property of the *network*, so every device at the same spot experiences
/// the same hole — matching how real dead zones behave, unlike per-event
/// random drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageFaults {
    /// Fraction of 2G sectors without coverage, `0.0..=1.0`.
    pub hole_fraction_g2: f64,
    /// Fraction of 3G sectors without coverage.
    pub hole_fraction_g3: f64,
    /// Fraction of 4G sectors without coverage. The paper's M2M dataset
    /// shows 40% of ES-homed IoT devices failing all 4G procedures (§3.3),
    /// driven partly by patchy 4G footprints.
    pub hole_fraction_g4: f64,
    /// Fraction of NB-IoT sectors without coverage. NB-IoT deployments
    /// are young (§8); where deployed at all, coverage per cell is deep
    /// (high link budget), so the default matches 4G.
    pub hole_fraction_nbiot: f64,
    /// Salt so different scenarios get different hole layouts.
    pub salt: u64,
}

impl Default for CoverageFaults {
    fn default() -> Self {
        CoverageFaults {
            hole_fraction_g2: 0.0,
            hole_fraction_g3: 0.01,
            hole_fraction_g4: 0.05,
            hole_fraction_nbiot: 0.05,
            salt: 0,
        }
    }
}

impl CoverageFaults {
    /// No coverage holes at all.
    pub const NONE: CoverageFaults = CoverageFaults {
        hole_fraction_g2: 0.0,
        hole_fraction_g3: 0.0,
        hole_fraction_g4: 0.0,
        hole_fraction_nbiot: 0.0,
        salt: 0,
    };

    fn fraction(&self, rat: Rat) -> f64 {
        match rat {
            Rat::G2 => self.hole_fraction_g2,
            Rat::G3 => self.hole_fraction_g3,
            Rat::G4 => self.hole_fraction_g4,
            Rat::NbIot => self.hole_fraction_nbiot,
        }
    }

    /// Whether `sector` is a coverage hole under this configuration.
    pub fn is_hole(&self, sector: SectorId) -> bool {
        let f = self.fraction(sector.rat());
        if f <= 0.0 {
            return false;
        }
        if f >= 1.0 {
            return true;
        }
        let h = mix64(sector.raw() ^ mix64(self.salt));
        (h as f64 / u64::MAX as f64) < f
    }
}

/// One operator's radio network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioNetwork {
    plmn: Plmn,
    rats: RatSet,
    grid: SectorGrid,
    faults: CoverageFaults,
}

impl RadioNetwork {
    /// Creates a network for `plmn` deploying `rats` over `geometry`.
    pub fn new(
        plmn: Plmn,
        rats: RatSet,
        geometry: CountryGeometry,
        spacing: GridSpacing,
        faults: CoverageFaults,
    ) -> Self {
        RadioNetwork {
            plmn,
            rats,
            grid: SectorGrid::new(plmn, geometry, spacing),
            faults,
        }
    }

    /// Operator PLMN.
    pub fn plmn(&self) -> Plmn {
        self.plmn
    }

    /// A copy of this network deploying a different RAT set — the
    /// technology-sunset what-if lever (§8: operators retiring 2G/3G).
    pub fn with_rats(&self, rats: RatSet) -> RadioNetwork {
        RadioNetwork {
            rats,
            ..self.clone()
        }
    }

    /// RATs this operator deploys.
    pub fn rats(&self) -> RatSet {
        self.rats
    }

    /// The sector grid (for decoding sector positions).
    pub fn grid(&self) -> &SectorGrid {
        &self.grid
    }

    /// Attempts to find a serving sector for a device at `p` wanting `rat`.
    ///
    /// Returns `None` when the operator does not deploy `rat` or the
    /// grid cell is a coverage hole.
    pub fn serve(&self, p: GeoPoint, rat: Rat) -> Option<SectorId> {
        if !self.rats.contains(rat) {
            return None;
        }
        let sector = self.grid.sector_at(p, rat);
        if self.faults.is_hole(sector) {
            None
        } else {
            Some(sector)
        }
    }

    /// The best (newest-generation) RAT this network can serve at `p` out
    /// of the RATs in `wanted`, with its sector. Models a device radio
    /// preferring 4G and falling back down the generations.
    pub fn serve_best(&self, p: GeoPoint, wanted: RatSet) -> Option<(Rat, SectorId)> {
        for rat in Rat::ALL.into_iter().rev() {
            if wanted.contains(rat) {
                if let Some(sec) = self.serve(p, rat) {
                    return Some((rat, sec));
                }
            }
        }
        None
    }

    /// Position of a sector minted by this network.
    pub fn sector_position(&self, id: SectorId) -> GeoPoint {
        self.grid.position_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::country::Country;

    fn geom() -> CountryGeometry {
        CountryGeometry::of(Country::by_iso("GB").unwrap())
    }

    fn network(rats: RatSet, faults: CoverageFaults) -> RadioNetwork {
        RadioNetwork::new(
            Plmn::of(234, 30),
            rats,
            geom(),
            GridSpacing::default(),
            faults,
        )
    }

    #[test]
    fn serve_respects_rat_deployment() {
        let net = network(RatSet::G2_G3, CoverageFaults::NONE);
        let p = GeoPoint::new(52.5, -1.0);
        assert!(net.serve(p, Rat::G2).is_some());
        assert!(net.serve(p, Rat::G3).is_some());
        assert!(net.serve(p, Rat::G4).is_none());
    }

    #[test]
    fn serve_best_prefers_newest() {
        let net = network(RatSet::CONVENTIONAL, CoverageFaults::NONE);
        let p = GeoPoint::new(52.5, -1.0);
        let (rat, _) = net.serve_best(p, RatSet::CONVENTIONAL).unwrap();
        assert_eq!(rat, Rat::G4);
        let (rat, _) = net.serve_best(p, RatSet::G2_ONLY).unwrap();
        assert_eq!(rat, Rat::G2);
        assert!(net.serve_best(p, RatSet::EMPTY).is_none());
    }

    #[test]
    fn holes_are_deterministic() {
        let faults = CoverageFaults {
            hole_fraction_g4: 0.5,
            salt: 7,
            ..CoverageFaults::NONE
        };
        let net = network(RatSet::CONVENTIONAL, faults);
        let p = GeoPoint::new(52.5, -1.0);
        let first = net.serve(p, Rat::G4);
        for _ in 0..10 {
            assert_eq!(net.serve(p, Rat::G4), first);
        }
    }

    #[test]
    fn hole_fraction_roughly_respected() {
        let faults = CoverageFaults {
            hole_fraction_g4: 0.3,
            salt: 3,
            ..CoverageFaults::NONE
        };
        let net = network(RatSet::CONVENTIONAL, faults);
        let mut holes = 0;
        let mut total = 0;
        for i in 0..60 {
            for j in 0..60 {
                let p = GeoPoint::new(50.0 + i as f64 * 0.11, -4.0 + j as f64 * 0.09);
                total += 1;
                if net.serve(p, Rat::G4).is_none() {
                    holes += 1;
                }
            }
        }
        let frac = holes as f64 / total as f64;
        assert!((0.2..0.4).contains(&frac), "hole fraction {frac}");
    }

    #[test]
    fn fallback_across_generations() {
        // With 4G fully dead, serve_best falls back to 3G.
        let faults = CoverageFaults {
            hole_fraction_g4: 1.0,
            ..CoverageFaults::NONE
        };
        let net = network(RatSet::CONVENTIONAL, faults);
        let p = GeoPoint::new(52.5, -1.0);
        let (rat, _) = net.serve_best(p, RatSet::CONVENTIONAL).unwrap();
        assert_eq!(rat, Rat::G3);
    }

    #[test]
    fn with_rats_swaps_deployment_only() {
        let net = network(RatSet::CONVENTIONAL, CoverageFaults::NONE);
        let sunset = net.with_rats(RatSet::of([Rat::G3, Rat::G4]));
        let p = GeoPoint::new(52.5, -1.0);
        assert!(net.serve(p, Rat::G2).is_some());
        assert!(sunset.serve(p, Rat::G2).is_none(), "2G retired");
        assert_eq!(sunset.serve(p, Rat::G4), net.serve(p, Rat::G4));
        assert_eq!(sunset.plmn(), net.plmn());
    }

    #[test]
    fn different_salt_different_holes() {
        let p = GeoPoint::new(52.5, -1.0);
        let mut outcomes = std::collections::HashSet::new();
        for salt in 0..64 {
            let faults = CoverageFaults {
                hole_fraction_g4: 0.5,
                salt,
                ..CoverageFaults::NONE
            };
            let net = network(RatSet::CONVENTIONAL, faults);
            outcomes.insert(net.serve(p, Rat::G4).is_some());
        }
        assert_eq!(outcomes.len(), 2, "salt never flips the hole state");
    }
}
