//! Geographic primitives and synthetic country geometry.
//!
//! Positions are WGS84-style latitude/longitude degrees. Distances use the
//! haversine formula — exactly what the gyration metric needs (§5.3):
//! distances between sector coordinates, in kilometres.
//!
//! Country geometry is synthetic: each country is modeled as a rectangle
//! centred on a representative point, sized by a rough area class. The
//! paper's mobility results only depend on *relative* movement (a smart
//! meter stays on one sector; a car crosses many), so a rectangle per
//! country preserves everything that matters.

use serde::{Deserialize, Serialize};
use std::fmt;
use wtr_model::country::Country;
use wtr_model::hash::mix64;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the globe in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, `-90..=90`.
    pub lat: f64,
    /// Longitude in degrees, `-180..=180`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point; debug-asserts coordinates are within range.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Returns the point offset by `(dlat, dlon)` degrees, clamped to
    /// valid ranges (no wrap-around; simulated movement stays regional).
    pub fn offset(self, dlat: f64, dlon: f64) -> GeoPoint {
        GeoPoint {
            lat: (self.lat + dlat).clamp(-89.9, 89.9),
            lon: (self.lon + dlon).clamp(-179.9, 179.9),
        }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// Weighted centroid of a set of points — "an aggregate representation of
/// where in the country the device was located" (§5.3). Weights are dwell
/// times. Returns `None` when the total weight is zero.
///
/// Computed in the local tangent plane (adequate at intra-country scale).
pub fn weighted_centroid(points: &[(GeoPoint, f64)]) -> Option<GeoPoint> {
    let total: f64 = points.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let lat = points.iter().map(|(p, w)| p.lat * w).sum::<f64>() / total;
    let lon = points.iter().map(|(p, w)| p.lon * w).sum::<f64>() / total;
    Some(GeoPoint { lat, lon })
}

/// Weighted radius of gyration in kilometres — "indicating how far from the
/// centroid the device was moving" (§5.3): the square root of the
/// time-weighted mean squared distance to the centroid.
pub fn radius_of_gyration_km(points: &[(GeoPoint, f64)]) -> Option<f64> {
    let centroid = weighted_centroid(points)?;
    let total: f64 = points.iter().map(|(_, w)| w).sum();
    let mean_sq = points
        .iter()
        .map(|(p, w)| {
            let d = p.distance_km(centroid);
            d * d * w
        })
        .sum::<f64>()
        / total;
    Some(mean_sq.sqrt())
}

/// Synthetic rectangular geometry for one country.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryGeometry {
    /// Representative centre.
    pub center: GeoPoint,
    /// Half-extent in latitude degrees.
    pub half_lat: f64,
    /// Half-extent in longitude degrees.
    pub half_lon: f64,
}

impl CountryGeometry {
    /// Geometry for a country: curated centres for the countries the paper
    /// names, deterministic hash-derived positions elsewhere (stable across
    /// runs, far enough apart that international movement is visible).
    pub fn of(country: &Country) -> CountryGeometry {
        for (iso, lat, lon, hlat, hlon) in CURATED_GEOMETRY {
            if *iso == country.iso {
                return CountryGeometry {
                    center: GeoPoint::new(*lat, *lon),
                    half_lat: *hlat,
                    half_lon: *hlon,
                };
            }
        }
        // Hash-derived fallback: scatter within ±55° latitude so grids stay
        // far from the poles.
        let h = mix64(country.primary_mcc().value() as u64);
        let lat = ((h & 0xffff) as f64 / 65_535.0) * 110.0 - 55.0;
        let lon = (((h >> 16) & 0x3_ffff) as f64 / 262_143.0) * 340.0 - 170.0;
        CountryGeometry {
            center: GeoPoint::new(lat, lon),
            half_lat: 2.0,
            half_lon: 2.5,
        }
    }

    /// Whether `p` lies inside the rectangle (with a small tolerance so
    /// points produced by [`CountryGeometry::clamp`] always test inside
    /// despite floating-point rounding).
    pub fn contains(&self, p: GeoPoint) -> bool {
        const EPS: f64 = 1e-9;
        (p.lat - self.center.lat).abs() <= self.half_lat + EPS
            && (p.lon - self.center.lon).abs() <= self.half_lon + EPS
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: GeoPoint) -> GeoPoint {
        GeoPoint {
            lat: p.lat.clamp(
                self.center.lat - self.half_lat,
                self.center.lat + self.half_lat,
            ),
            lon: p.lon.clamp(
                self.center.lon - self.half_lon,
                self.center.lon + self.half_lon,
            ),
        }
    }

    /// A deterministic point inside the rectangle derived from `selector`
    /// (used to place stationary devices like smart meters).
    pub fn point_from_hash(&self, selector: u64) -> GeoPoint {
        let h = mix64(selector);
        let fy = (h & 0xffff_ffff) as f64 / u32::MAX as f64;
        let fx = (h >> 32) as f64 / u32::MAX as f64;
        GeoPoint {
            lat: self.center.lat - self.half_lat + fy * 2.0 * self.half_lat,
            lon: self.center.lon - self.half_lon + fx * 2.0 * self.half_lon,
        }
    }
}

/// Curated (iso, lat, lon, half_lat, half_lon) for countries central to the
/// paper's story.
const CURATED_GEOMETRY: &[(&str, f64, f64, f64, f64)] = &[
    ("GB", 53.0, -1.5, 4.0, 3.0),
    ("ES", 40.2, -3.7, 3.8, 4.5),
    ("DE", 51.0, 10.0, 3.5, 4.0),
    ("NL", 52.2, 5.3, 1.2, 1.5),
    ("SE", 60.0, 15.0, 6.0, 4.0),
    ("MX", 23.5, -102.0, 6.0, 8.0),
    ("AR", -34.5, -64.0, 8.0, 5.0),
    ("FR", 46.5, 2.5, 4.0, 4.0),
    ("IT", 42.5, 12.5, 4.5, 3.5),
    ("PT", 39.5, -8.0, 2.5, 1.5),
    ("IE", 53.2, -8.0, 1.8, 1.8),
    ("AU", -25.0, 134.0, 9.0, 14.0),
    ("US", 39.0, -98.0, 10.0, 20.0),
    ("BR", -10.0, -52.0, 10.0, 10.0),
    ("JP", 36.5, 138.0, 4.5, 4.0),
];

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::country::Country;

    #[test]
    fn haversine_known_distance() {
        // London → Madrid ≈ 1264 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let madrid = GeoPoint::new(40.4168, -3.7038);
        let d = london.distance_km(madrid);
        assert!((1_200.0..1_330.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-5.0, 100.0);
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        assert!(a.distance_km(a) < 1e-9);
    }

    #[test]
    fn centroid_of_single_point_is_itself() {
        let p = GeoPoint::new(50.0, 0.0);
        let c = weighted_centroid(&[(p, 3.0)]).unwrap();
        assert!((c.lat - 50.0).abs() < 1e-12 && c.lon.abs() < 1e-12);
    }

    #[test]
    fn centroid_respects_weights() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 10.0);
        let c = weighted_centroid(&[(a, 3.0), (b, 1.0)]).unwrap();
        assert!((c.lon - 2.5).abs() < 1e-12, "got {}", c.lon);
    }

    #[test]
    fn gyration_zero_for_stationary_device() {
        // A smart meter on a single sector must have gyration 0 — this is
        // the degenerate case dominating Fig. 8's m2m curve.
        let p = GeoPoint::new(52.0, 0.1);
        let r = radius_of_gyration_km(&[(p, 86_400.0)]).unwrap();
        assert!(r < 1e-9);
    }

    #[test]
    fn gyration_grows_with_spread() {
        let a = GeoPoint::new(52.0, 0.0);
        let near = radius_of_gyration_km(&[(a, 1.0), (a.offset(0.01, 0.0), 1.0)]).unwrap();
        let far = radius_of_gyration_km(&[(a, 1.0), (a.offset(1.0, 0.0), 1.0)]).unwrap();
        assert!(far > near * 10.0, "near={near} far={far}");
    }

    #[test]
    fn gyration_none_without_weight() {
        assert!(radius_of_gyration_km(&[]).is_none());
        let p = GeoPoint::new(0.0, 0.0);
        assert!(radius_of_gyration_km(&[(p, 0.0)]).is_none());
    }

    #[test]
    fn curated_geometry_used_for_paper_countries() {
        let gb = CountryGeometry::of(Country::by_iso("GB").unwrap());
        assert!((gb.center.lat - 53.0).abs() < 1e-9);
        let nl = CountryGeometry::of(Country::by_iso("NL").unwrap());
        assert!(nl.half_lat < gb.half_lat, "NL should be smaller than GB");
    }

    #[test]
    fn fallback_geometry_is_deterministic_and_valid() {
        let kz = Country::by_iso("KZ").unwrap();
        let a = CountryGeometry::of(kz);
        let b = CountryGeometry::of(kz);
        assert_eq!(a, b);
        assert!((-90.0..=90.0).contains(&a.center.lat));
        assert!((-180.0..=180.0).contains(&a.center.lon));
    }

    #[test]
    fn point_from_hash_inside_rectangle() {
        let g = CountryGeometry::of(Country::by_iso("ES").unwrap());
        for sel in 0..500u64 {
            let p = g.point_from_hash(sel);
            assert!(g.contains(p), "{p} escaped rectangle");
        }
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let g = CountryGeometry::of(Country::by_iso("NL").unwrap());
        let outside = GeoPoint::new(80.0, 170.0);
        assert!(g.contains(g.clamp(outside)));
    }
}
