//! Property tests for the sector-grid codec and coverage model.

use proptest::prelude::*;
use wtr_model::country::Country;
use wtr_model::ids::Plmn;
use wtr_model::rat::Rat;
use wtr_radio::geo::{CountryGeometry, GeoPoint};
use wtr_radio::network::{CoverageFaults, RadioNetwork};
use wtr_radio::sector::{GridSpacing, SectorGrid};

fn arb_rat() -> impl Strategy<Value = Rat> {
    prop_oneof![
        Just(Rat::G2),
        Just(Rat::G3),
        Just(Rat::G4),
        Just(Rat::NbIot)
    ]
}

fn gb_grid() -> SectorGrid {
    SectorGrid::new(
        Plmn::of(234, 30),
        CountryGeometry::of(Country::by_iso("GB").unwrap()),
        GridSpacing::default(),
    )
}

proptest! {
    #[test]
    fn sector_codec_roundtrips_rat_and_locality(
        lat in 49.5f64..56.5,
        lon in -4.4f64..1.4,
        rat in arb_rat()
    ) {
        let grid = gb_grid();
        let p = GeoPoint::new(lat, lon);
        let sector = grid.sector_at(p, rat);
        // RAT survives the id packing.
        prop_assert_eq!(sector.rat(), rat);
        // Decoded centre is within one cell diagonal of the query point.
        let centre = grid.position_of(sector);
        let max_km = 1.6 * GridSpacing::default().for_rat(rat) * 111.2;
        prop_assert!(p.distance_km(centre) <= max_km);
        // Re-querying at the decoded centre lands in the same cell.
        prop_assert_eq!(grid.sector_at(centre, rat), sector);
    }

    #[test]
    fn sector_assignment_is_deterministic(
        lat in 49.5f64..56.5,
        lon in -4.4f64..1.4,
        rat in arb_rat()
    ) {
        let grid = gb_grid();
        let p = GeoPoint::new(lat, lon);
        prop_assert_eq!(grid.sector_at(p, rat), grid.sector_at(p, rat));
    }

    #[test]
    fn serve_best_honours_capability_and_deployment(
        lat in 49.5f64..56.5,
        lon in -4.4f64..1.4,
        cap_bits in 0u8..16
    ) {
        use wtr_model::rat::RatSet;
        let caps = RatSet::of(
            Rat::ALL.into_iter().filter(|r| {
                let bit = match r { Rat::G2 => 1, Rat::G3 => 2, Rat::G4 => 4, Rat::NbIot => 8 };
                cap_bits & bit != 0
            })
        );
        let net = RadioNetwork::new(
            Plmn::of(234, 30),
            RatSet::CONVENTIONAL,
            CountryGeometry::of(Country::by_iso("GB").unwrap()),
            GridSpacing::default(),
            CoverageFaults::NONE,
        );
        let served = net.serve_best(GeoPoint::new(lat, lon), caps);
        match served {
            Some((rat, sector)) => {
                // Whatever is served must be within both the device's
                // capability and the operator's deployment.
                prop_assert!(caps.contains(rat));
                prop_assert!(net.rats().contains(rat));
                prop_assert_eq!(sector.rat(), rat);
            }
            None => {
                // Only possible when capability ∩ deployment is empty
                // (no coverage holes configured here).
                prop_assert!(caps.intersection(net.rats()).is_empty());
            }
        }
    }

    #[test]
    fn coverage_holes_deterministic_and_bounded(
        frac in 0.0f64..1.0,
        salt in any::<u64>(),
        lat in 49.5f64..56.5,
        lon in -4.4f64..1.4
    ) {
        let faults = CoverageFaults {
            hole_fraction_g2: 0.0,
            hole_fraction_g3: 0.0,
            hole_fraction_g4: frac,
            hole_fraction_nbiot: 0.0,
            salt,
        };
        let net = RadioNetwork::new(
            Plmn::of(234, 30),
            wtr_model::rat::RatSet::CONVENTIONAL,
            CountryGeometry::of(Country::by_iso("GB").unwrap()),
            GridSpacing::default(),
            faults,
        );
        let p = GeoPoint::new(lat, lon);
        prop_assert_eq!(net.serve(p, Rat::G4).is_some(), net.serve(p, Rat::G4).is_some());
        // 2G is hole-free: always served.
        prop_assert!(net.serve(p, Rat::G2).is_some());
    }

    #[test]
    fn gyration_nonnegative_and_centroid_in_hull(
        pts in prop::collection::vec((50.0f64..55.0, -4.0f64..1.0, 0.1f64..5.0), 1..30)
    ) {
        use wtr_radio::geo::{radius_of_gyration_km, weighted_centroid};
        let weighted: Vec<(GeoPoint, f64)> =
            pts.iter().map(|(a, b, w)| (GeoPoint::new(*a, *b), *w)).collect();
        let g = radius_of_gyration_km(&weighted).unwrap();
        prop_assert!(g >= 0.0);
        let c = weighted_centroid(&weighted).unwrap();
        let min_lat = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max_lat = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(c.lat >= min_lat - 1e-9 && c.lat <= max_lat + 1e-9);
    }
}
