//! The shared simulated universe: operators, geometries, radio networks,
//! agreements and steering.
//!
//! Both scenarios run against a [`Universe`]: every country in the model
//! registry gets its MNOs deployed as radio networks, the platform's
//! carrier runs a global roaming hub (interconnecting the HMNOs with
//! MNOs world-wide, §2.1), and a [`PlatformPolicy`] turns that agreement
//! graph into per-attach admission decisions.

use std::collections::BTreeMap;
use wtr_model::country::Country;
use wtr_model::ids::Plmn;
use wtr_model::operators::{well_known, OperatorKind, OperatorRegistry};
use wtr_model::rat::RatSet;
use wtr_model::vertical::Vertical;
use wtr_platform::agreements::AgreementGraph;
use wtr_platform::platform::M2mPlatform;
use wtr_platform::policy::PlatformPolicy;
use wtr_radio::geo::CountryGeometry;
use wtr_radio::network::{CoverageFaults, RadioNetwork};
use wtr_radio::sector::GridSpacing;
use wtr_sim::behavior::{profile_matrix, BehaviorMatrix, BehaviorOptions};
use wtr_sim::traffic::TrafficProfile;
use wtr_sim::world::NetworkDirectory;

/// Everything the scenarios share: registry, networks, policy, platform.
pub struct Universe {
    /// All operators.
    pub registry: OperatorRegistry,
    /// All radio networks, by country.
    pub directory: NetworkDirectory,
    /// Admission + steering policy.
    pub policy: PlatformPolicy,
    /// The M2M platform (IoT SIM provisioning).
    pub platform: M2mPlatform,
}

impl Universe {
    /// Geometry of a country by ISO code.
    pub fn geometry(iso: &str) -> CountryGeometry {
        CountryGeometry::of(Country::by_iso(iso).expect("known country"))
    }

    /// The standard per-vertical behavior library: each [`Vertical`]'s
    /// calibrated traffic profile compiled into a [`BehaviorMatrix`],
    /// keyed by [`Vertical::label`]. This map (serialized) is exactly the
    /// `--behavior <file.json>` format, and `wtr behavior-template` dumps
    /// it as the starting point for custom device classes.
    ///
    /// Planes whose rate is zero in the profile are compiled disabled, so
    /// the library matrices describe what the class actually does. They
    /// are class-level *baselines*: always active, no switch propensity,
    /// no injected failures. The built-in populations instead compile one
    /// matrix per device (folding in per-device switch propensity, sticky
    /// failures and activity), so overriding a vertical with its template
    /// matrix intentionally replaces that per-device variation with the
    /// class baseline — mobility, presence and APN lists still come from
    /// the device spec.
    pub fn standard_behaviors() -> BTreeMap<String, BehaviorMatrix> {
        Vertical::ALL
            .iter()
            .map(|v| {
                let profile = TrafficProfile::for_vertical(*v);
                let opts = BehaviorOptions {
                    data_enabled: profile.data_sessions_per_day > 0.0,
                    voice_enabled: profile.voice_per_day > 0.0,
                    ..BehaviorOptions::default()
                };
                (v.label().to_owned(), profile_matrix(&profile, &opts))
            })
            .collect()
    }

    /// Builds the standard universe:
    ///
    /// * 3 MNOs per country, curated PLMNs for the paper's named networks;
    /// * every MNO deploys 2G+3G; the first two per country also deploy 4G
    ///   (4G coverage holes per `faults`);
    /// * one **global roaming hub** run by the platform's carrier, joined
    ///   by all four HMNOs and by the first MNO of every country; a
    ///   **partner hub**, peered with the global one, joined by the second
    ///   MNO of every country — giving the paper's hub-of-hubs footprint;
    /// * bilateral agreements between the studied UK MNO and the paper's
    ///   key foreign HMNOs (NL, SE, ES, DE — the SIM homes of its inbound
    ///   roamers), plus intra-UK national-roaming agreements used by the
    ///   national inbound population.
    pub fn standard(faults: CoverageFaults) -> Universe {
        let registry = OperatorRegistry::standard(3);
        let mut directory = NetworkDirectory::new();
        for country in Country::all() {
            let geometry = CountryGeometry::of(country);
            for (idx, op) in registry
                .iter()
                .filter(|o| o.country_iso == country.iso && matches!(o.kind, OperatorKind::Mno))
                .enumerate()
            {
                // First two MNOs run 4G; in EU/RLAH countries (where the
                // paper notes NB-IoT roaming trials are under way, §8) the
                // leading MNO also lights up an NB-IoT carrier.
                let rats = match idx {
                    // The studied UK MNO runs its own NB-IoT trial too
                    // (SMIP's scale makes it an early LPWA adopter).
                    0 if country.eu_rlah || op.plmn == well_known::UK_STUDIED_MNO => {
                        RatSet::CONVENTIONAL.union(RatSet::NBIOT_ONLY)
                    }
                    0 | 1 => RatSet::CONVENTIONAL,
                    _ => RatSet::G2_G3,
                };
                directory.add(
                    country.iso,
                    RadioNetwork::new(op.plmn, rats, geometry, GridSpacing::default(), faults),
                );
            }
        }

        let mut agreements = AgreementGraph::new();
        let global_hub = agreements.add_hub("GlobalConnect IPX");
        let partner_hub = agreements.add_hub("Meridian Hub");
        agreements.peer_hubs(global_hub, partner_hub);
        for hmno in [
            well_known::ES_HMNO,
            well_known::DE_HMNO,
            well_known::MX_HMNO,
            well_known::AR_HMNO,
            well_known::NL_SMART_METER_HMNO,
            well_known::SE_HMNO,
        ] {
            agreements.join_hub(global_hub, hmno);
        }
        for country in Country::all() {
            let mnos: Vec<Plmn> = directory.in_country(country.iso).to_vec();
            if let Some(first) = mnos.first() {
                agreements.join_hub(global_hub, *first);
            }
            if let Some(second) = mnos.get(1) {
                agreements.join_hub(partner_hub, *second);
            }
        }
        // The studied MNO's direct bilateral relationships.
        for partner in [
            well_known::NL_SMART_METER_HMNO,
            well_known::SE_HMNO,
            well_known::ES_HMNO,
            well_known::DE_HMNO,
        ] {
            agreements.add_bilateral(well_known::UK_STUDIED_MNO, partner);
        }
        // Intra-UK national roaming (used by the national inbound
        // population and by roaming smart meters hopping UK networks).
        for other in well_known::UK_OTHER_MNOS {
            agreements.add_bilateral(well_known::UK_STUDIED_MNO, *other);
        }

        let mut policy = PlatformPolicy::new(agreements);
        policy.allow_national_roaming = true;

        let platform = M2mPlatform::new(vec![
            well_known::ES_HMNO,
            well_known::DE_HMNO,
            well_known::MX_HMNO,
            well_known::AR_HMNO,
        ]);

        Universe {
            registry,
            directory,
            policy,
            platform,
        }
    }

    /// Retires one RAT from every network of a country — the §8 sunset
    /// what-if. Devices whose hardware only supports the retired RAT are
    /// stranded there.
    pub fn sunset_rat(&mut self, iso: &str, rat: wtr_model::rat::Rat) {
        let plmns: Vec<Plmn> = self.directory.in_country(iso).to_vec();
        let mut rebuilt = NetworkDirectory::new();
        for country in Country::all() {
            for plmn in self.directory.in_country(country.iso).to_vec() {
                let net = self.directory.get(plmn).expect("registered").clone();
                let net = if plmns.contains(&plmn) {
                    let mut rats = net.rats();
                    rats.remove(rat);
                    net.with_rats(rats)
                } else {
                    net
                };
                rebuilt.add(country.iso, net);
            }
        }
        self.directory = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_sim::world::{AccessDecision, AccessPolicy};

    #[test]
    fn every_country_has_networks() {
        let u = Universe::standard(CoverageFaults::NONE);
        for country in Country::all() {
            let nets = u.directory.in_country(country.iso);
            assert!(nets.len() >= 3, "{}: {} networks", country.iso, nets.len());
        }
    }

    #[test]
    fn hub_gives_platform_sims_global_reach() {
        let u = Universe::standard(CoverageFaults::NONE);
        // ES HMNO SIM admitted by the first MNO of an arbitrary far
        // country via the global hub.
        let au = u.directory.in_country("AU")[0];
        assert_eq!(
            u.policy.decide(well_known::ES_HMNO, au),
            AccessDecision::Allowed
        );
        // …and by second MNOs via the hub peering.
        let au2 = u.directory.in_country("AU")[1];
        assert_eq!(
            u.policy.decide(well_known::ES_HMNO, au2),
            AccessDecision::Allowed
        );
        // Third MNOs are in no hub: denied without a bilateral.
        let au3 = u.directory.in_country("AU")[2];
        assert_eq!(
            u.policy.decide(well_known::ES_HMNO, au3),
            AccessDecision::RoamingNotAllowed
        );
    }

    #[test]
    fn uk_studied_mno_reachable_by_meter_sims() {
        let u = Universe::standard(CoverageFaults::NONE);
        assert!(u
            .policy
            .decide(well_known::NL_SMART_METER_HMNO, well_known::UK_STUDIED_MNO)
            .is_allowed());
    }

    #[test]
    fn first_two_mnos_deploy_4g() {
        let u = Universe::standard(CoverageFaults::NONE);
        let gb = u.directory.in_country("GB");
        assert!(u
            .directory
            .get(gb[0])
            .unwrap()
            .rats()
            .contains(wtr_model::rat::Rat::G4));
        assert!(u
            .directory
            .get(gb[1])
            .unwrap()
            .rats()
            .contains(wtr_model::rat::Rat::G4));
        assert!(!u
            .directory
            .get(gb[2])
            .unwrap()
            .rats()
            .contains(wtr_model::rat::Rat::G4));
    }

    #[test]
    fn sunset_removes_rat_in_one_country_only() {
        let mut u = Universe::standard(CoverageFaults::NONE);
        u.sunset_rat("GB", wtr_model::rat::Rat::G2);
        for plmn in u.directory.in_country("GB") {
            assert!(!u
                .directory
                .get(*plmn)
                .unwrap()
                .rats()
                .contains(wtr_model::rat::Rat::G2));
        }
        let es = u.directory.in_country("ES")[0];
        assert!(u
            .directory
            .get(es)
            .unwrap()
            .rats()
            .contains(wtr_model::rat::Rat::G2));
    }

    #[test]
    fn studied_mno_is_a_first_network() {
        // The studied MNO must deploy 4G (it hosts smartphones); curated
        // PLMNs are inserted first, so it is the first GB network.
        let u = Universe::standard(CoverageFaults::NONE);
        assert_eq!(u.directory.in_country("GB")[0], well_known::UK_STUDIED_MNO);
    }
}
