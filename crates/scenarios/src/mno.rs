//! The visited-MNO scenario (§4–§7): one UK operator's full device
//! population over 22 days, collected through the MNO probe into the daily
//! devices-catalog.
//!
//! ## Population plan
//!
//! Device-level fractions, each calibrated to a paper statistic (the
//! per-line comments name it; EXPERIMENTS.md records measured values):
//!
//! | sub-population | fraction | target |
//! |---|---|---|
//! | smartphones, native H SIM | 0.340 | §4.2 H:H ≈ 48%/day |
//! | smartphones, MVNO V SIM | 0.200 | §4.2 V:H ≈ 33%/day |
//! | smartphones, outbound legs | 0.010 | H:A rows exist |
//! | smartphones, inbound tourists | 0.075 | Fig. 6: 12.1% of smart are I:H |
//! | feature phones, native | 0.045 | 8% feat overall |
//! | feature phones, MVNO | 0.025 | |
//! | feature phones, inbound | 0.005 | Fig. 6: 6.4% of feat are I:H |
//! | smart meters, inbound (NL SIMs) | 0.120 | §4.4 SMIP roaming; Fig. 5 NL top |
//! | connected cars, inbound (DE SIMs) | 0.020 | §7.2 |
//! | asset trackers, inbound (SE SIMs) | 0.025 | Fig. 5 SE |
//! | other M2M, inbound (ES + tail) | 0.029 | Fig. 5 ES; long tail |
//! | smart meters, native SMIP (dedicated IMSI range) | 0.045 | §4.4 |
//! | industrial sensors, native | 0.021 | m2m H:H remainder |
//! | security alarms, voice-only (no APN) | 0.040 | §4.3 m2m-maybe ≈ 4% |
//!
//! Totals: ground-truth M2M = 30% (26% classifiable + 4% voice-only),
//! smart = 62.5%, feat = 7.5%; inbound M2M / all M2M ≈ 74.6% (paper
//! 74.7%); I:H composition ≈ 71% m2m / 27% smart (paper 71.1/27.1).

use crate::universe::Universe;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use wtr_model::apn::Apn;
use wtr_model::country::Country;
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_model::ids::{Imei, Imsi, ImsiRange, Plmn, Tac};
use wtr_model::operators::well_known;
use wtr_model::rat::RatSet;
use wtr_model::tacdb::TacDatabase;
use wtr_model::time::SimTime;
use wtr_model::vertical::Vertical;
use wtr_probes::catalog::DevicesCatalog;
use wtr_probes::faults::LossySink;
use wtr_probes::mno::MnoProbe;
use wtr_radio::network::{CoverageFaults, RadioNetwork};
use wtr_radio::sector::GridSpacing;
use wtr_sim::behavior::BehaviorMatrix;
use wtr_sim::device::{DeviceAgent, DeviceSpec, ItineraryLeg, PresenceModel};
use wtr_sim::engine::EngineStats;
use wtr_sim::mobility::MobilityModel;
use wtr_sim::par;
use wtr_sim::rng::SubstreamRng;
use wtr_sim::shard;
use wtr_sim::stream::EventBatcher;
use wtr_sim::traffic::TrafficProfile;
use wtr_sim::world::{EventSink, RoamingWorld};

/// The studied MNO's dedicated SMIP IMSI block (§4.4).
pub const SMIP_MSIN_BASE: u64 = 7_000_000_000;
/// Capacity of the SMIP block.
pub const SMIP_MSIN_CAPACITY: u64 = 1_000_000_000;

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MnoScenarioConfig {
    /// Number of devices (paper: 39.6M; default ≈1/2000 scale).
    pub devices: usize,
    /// Observation window in days (paper: 22).
    pub days: u32,
    /// Master seed.
    pub seed: u64,
    /// Fraction of inbound smart meters shipped with NB-IoT (instead of
    /// 2G) modules — the §8 what-if. 0 reproduces the paper's 2019
    /// population; raise it to study the post-LPWA-migration world (the
    /// `repro` harness's E20).
    pub nbiot_meter_fraction: f64,
    /// Retire 2G across every UK network — the §6.1/§8 sunset what-if
    /// ("some MNOs already shutdown 2G services"). 2G-only hardware is
    /// stranded; the E23 experiment measures how much of the M2M
    /// population vanishes.
    pub sunset_2g_uk: bool,
    /// The GSMA-transparency what-if (§1): the Dutch meter HMNO publishes
    /// its dedicated M2M IMSI range, letting the studied MNO tag those
    /// SIMs at collection time with no classification inference at all.
    pub gsma_transparency: bool,
    /// Fraction of probe records lost before aggregation (probe restarts,
    /// buffer overruns). The analysis pipeline's shares must degrade
    /// gracefully under loss — asserted by the robustness tests.
    pub record_loss_fraction: f64,
}

impl Default for MnoScenarioConfig {
    fn default() -> Self {
        MnoScenarioConfig {
            devices: 20_000,
            days: 22,
            seed: 0x57524f41, // "WROA"
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        }
    }
}

/// Scenario output: the devices-catalog plus hidden ground truth.
#[derive(Debug)]
pub struct MnoScenarioOutput {
    /// The daily devices-catalog the probe built.
    pub catalog: DevicesCatalog,
    /// Ground-truth vertical per anonymized device ID (validation only).
    pub ground_truth: BTreeMap<u64, Vertical>,
    /// The GSMA-like TAC catalog (the classifier's device-property input).
    pub tacdb: TacDatabase,
    /// The studied MNO's dedicated SMIP IMSI range.
    pub smip_range: ImsiRange,
    /// Window length in days.
    pub days: u32,
    /// Raw probe record counters: (radio events, CDRs, xDRs).
    pub record_counts: (u64, u64, u64),
    /// Per-day load on the monitored core elements (MME/SGSN/MSC/…).
    pub element_load: Vec<wtr_probes::mno::ElementLoad>,
    /// Per-shard engine statistics (agents, wake-ups scheduled and
    /// dispatched, queue high-water mark), in shard order — one entry
    /// per event loop the run used. A serial run has exactly one entry;
    /// spread in `dispatched` across entries shows shard imbalance.
    pub shard_stats: Vec<EngineStats>,
}

impl MnoScenarioOutput {
    /// Sum of the per-shard engine statistics ([`EngineStats::absorb`]).
    /// Counters are additive across shards; for the queue high-water
    /// mark the total carries both `peak_queue` (cross-shard sum, an
    /// upper bound on concurrent depth) and `peak_queue_max` (deepest
    /// single event loop — the figure the CLI summary prints).
    pub fn engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.shard_stats {
            total.absorb(s);
        }
        total
    }
}

/// The §4–§7 scenario builder/runner.
pub struct MnoScenario {
    config: MnoScenarioConfig,
    /// Per-vertical behavior overrides keyed by [`Vertical::label`]:
    /// devices of a listed vertical step the supplied matrix instead of
    /// their spec's compiled behavior (the `--behavior` CLI path).
    behavior_overrides: BTreeMap<String, Arc<BehaviorMatrix>>,
}

const UK: Plmn = well_known::UK_STUDIED_MNO;

impl MnoScenario {
    /// Creates a scenario.
    pub fn new(config: MnoScenarioConfig) -> Self {
        MnoScenario {
            config,
            behavior_overrides: BTreeMap::new(),
        }
    }

    /// Installs per-vertical behavior overrides (validated matrices keyed
    /// by [`Vertical::label`], e.g. loaded from a `--behavior` file).
    /// Verticals absent from the map keep their compiled spec behavior.
    pub fn with_behavior_overrides(
        mut self,
        overrides: BTreeMap<String, Arc<BehaviorMatrix>>,
    ) -> Self {
        self.behavior_overrides = overrides;
        self
    }

    /// The studied MNO's dedicated smart-meter IMSI range.
    pub fn smip_range() -> ImsiRange {
        ImsiRange::new(UK, SMIP_MSIN_BASE, SMIP_MSIN_BASE + SMIP_MSIN_CAPACITY)
            .expect("constant range valid")
    }

    /// Builds, simulates and collects the catalog.
    ///
    /// The agent population is partitioned into `wtr_sim::par::threads()`
    /// contiguous shards, each simulated on its own event loop (see
    /// [`MnoScenario::run_sharded`]). Output is byte-identical at any
    /// shard count, so the default simply follows the `WTR_THREADS` /
    /// `par::set_threads` worker knob.
    pub fn run(&self) -> MnoScenarioOutput {
        self.run_sharded(shard::shard_count(None))
    }

    /// Streaming variant of [`run`](MnoScenario::run): each shard's probe
    /// sits behind a [`wtr_sim::stream::EventBatcher`], so the engine's
    /// event loop feeds it whole chunks through the [`wtr_sim::ChunkFold`]
    /// interface instead of one `on_event` call per record.
    ///
    /// The batcher folds each batch *serially*, reproducing the push
    /// model's exact arithmetic sequence — the resulting catalog is
    /// byte-identical to [`run`](MnoScenario::run)'s at any thread count
    /// (the equivalence suite asserts it), while peak memory stays
    /// O(batch + probe state).
    pub fn run_streaming(&self) -> MnoScenarioOutput {
        self.run_streaming_sharded(shard::shard_count(None))
    }

    /// [`run`](MnoScenario::run) with an explicit shard count: the device
    /// population splits into `shards` contiguous shards
    /// ([`wtr_sim::par::split_ranges`]), each runs its own engine with a
    /// shard-local probe behind a shard-local [`LossySink`], and the
    /// shard probes merge in shard order — a parallel tree reduction
    /// over `MnoProbe::absorb` (see [`merge_shard_probes`]) — followed
    /// by APN-symbol canonicalization. `shards == 1` *is* the serial
    /// path: one engine, inline on the calling thread.
    ///
    /// Output — catalog bytes, ground truth, record counts, element
    /// load — is byte-identical at every shard count; the shard-count
    /// determinism matrix in `tests/shard_determinism.rs` enforces it.
    pub fn run_sharded(&self, shards: usize) -> MnoScenarioOutput {
        self.run_with(shards, |probe| probe, |probe| probe)
    }

    /// [`run_streaming`](MnoScenario::run_streaming) with an explicit
    /// shard count: shard-local `EventBatcher`s, same merge as
    /// [`run_sharded`](MnoScenario::run_sharded).
    pub fn run_streaming_sharded(&self, shards: usize) -> MnoScenarioOutput {
        self.run_with(shards, EventBatcher::new, EventBatcher::finish)
    }

    /// Shared body of the four runners: `wrap` adapts a shard-local probe
    /// into the engine's event sink, `unwrap` recovers it (flushing any
    /// buffered records) after that shard's simulation completes. Both
    /// are called once per shard.
    fn run_with<S: EventSink + Send>(
        &self,
        shards: usize,
        wrap: impl Fn(MnoProbe) -> S + Sync,
        unwrap: impl Fn(S) -> MnoProbe,
    ) -> MnoScenarioOutput {
        let cfg = &self.config;
        let faults = CoverageFaults {
            hole_fraction_g2: 0.0,
            hole_fraction_g3: 0.12,
            hole_fraction_g4: 0.04,
            hole_fraction_nbiot: 0.04,
            salt: cfg.seed,
        };
        let mut universe = Universe::standard(faults);
        if cfg.sunset_2g_uk {
            universe.sunset_rat("GB", wtr_model::rat::Rat::G2);
        }
        let tacdb = TacDatabase::standard();
        let mut rng = SubstreamRng::derive(cfg.seed, 0xB22);
        let mut builder = PopulationBuilder {
            cfg,
            tacdb: &tacdb,
            rng: &mut rng,
            next_msin: HashMap::new(),
            specs: Vec::with_capacity(cfg.devices),
            truth: Vec::with_capacity(cfg.devices),
        };
        builder.build();
        let PopulationBuilder { specs, truth, .. } = builder;

        let home_network = RadioNetwork::new(
            UK,
            RatSet::CONVENTIONAL,
            Universe::geometry("GB"),
            GridSpacing::default(),
            faults,
        );
        let mut probe = MnoProbe::new(
            UK,
            universe.registry.clone(),
            home_network,
            AnonKey::FIXED,
            cfg.days,
        )
        .with_designated_range(Self::smip_range());
        if cfg.gsma_transparency {
            // The NL meter HMNO's published block: same 5_000_000_000-base
            // convention the M2M platform uses for dedicated ranges.
            probe = probe.with_published_m2m_range(
                ImsiRange::new(
                    well_known::NL_SMART_METER_HMNO,
                    5_000_000_000,
                    6_000_000_000,
                )
                .expect("constant range valid"),
            );
        }
        let horizon = SimTime::from_secs(cfg.days as u64 * 86_400);
        let mut ground_truth = BTreeMap::new();
        let agents: Vec<DeviceAgent> = specs
            .into_iter()
            .zip(truth)
            .map(|(spec, vertical)| {
                ground_truth.insert(anonymize_u64(AnonKey::FIXED, spec.imsi.packed()), vertical);
                match self.behavior_overrides.get(spec.vertical.label()) {
                    Some(matrix) => DeviceAgent::with_behavior(spec, Arc::clone(matrix), cfg.seed)
                        .expect("population specs are valid"),
                    None => DeviceAgent::new(spec, cfg.seed),
                }
            })
            .collect();
        // Each shard gets its own world: a clone of the directory and
        // roaming policy, plus a fresh empty probe forked from the
        // prototype. Probe records can be lossy (fault injection): each
        // shard wraps its probe in a shard-local LossySink so a configured
        // fraction never reaches aggregation. The loss layer sits
        // *outside* the batcher and its drop coin is keyed on
        // (salt, device, per-device seq), so the dropped-record set is
        // identical across shard counts and on both run paths.
        let directory = universe.directory;
        let policy = universe.policy;
        let probe_proto = probe;
        let results = shard::run_sharded(horizon, shards, agents, |_shard| {
            let lossy = LossySink::new(
                wrap(probe_proto.fork_empty()),
                cfg.record_loss_fraction,
                cfg.seed,
            );
            RoamingWorld::new(directory.clone(), Box::new(policy.clone()), lossy, cfg.seed)
        });
        // Merge the shard probes in shard order, then canonicalize APN
        // symbols: the only interleaving-dependent state is the intern
        // order, which canonicalization erases.
        let mut shard_stats = Vec::with_capacity(results.len());
        let mut shard_probes = Vec::with_capacity(shard_stats.capacity());
        for (world, stats) in results {
            shard_stats.push(stats);
            shard_probes.push(unwrap(world.sink.into_inner()));
        }
        let mut probe = merge_shard_probes(shard_probes);
        probe.canonicalize();
        let record_counts = (
            probe.radio_event_count(),
            probe.cdr_count(),
            probe.xdr_count(),
        );
        let element_load = probe.element_load().to_vec();
        MnoScenarioOutput {
            catalog: probe.into_catalog(),
            ground_truth,
            tacdb,
            smip_range: Self::smip_range(),
            days: cfg.days,
            record_counts,
            element_load,
            shard_stats,
        }
    }
}

/// Merges per-shard probes (in shard order) into one.
///
/// The merge is a balanced binary [`par::tree_reduce`] over
/// `MnoProbe::absorb`: `O(log K)` levels of pairwise merges instead of a
/// serial `K`-step left fold, with each level's pairs absorbed on scoped
/// worker threads. The result is byte-identical to the serial fold at
/// any thread count: shard probes tap disjoint device populations, so
/// catalog rows never collide across shards (no floating-point
/// regrouping), record vectors concatenate in shard order under any
/// ordered tree, counters are additive, and the APN intern order any
/// ordered tree produces is erased by the canonicalization pass that
/// follows. `tests/shard_determinism.rs` pins both the golden digest
/// and serial-vs-tree equality.
///
/// Setting `WTR_SERIAL_MERGE=1` forces the serial left fold — the
/// reference path for equivalence tests and merge-ablation benches.
pub fn merge_shard_probes(probes: Vec<MnoProbe>) -> MnoProbe {
    let serial = std::env::var("WTR_SERIAL_MERGE").is_ok_and(|v| v == "1");
    if serial {
        let mut merged: Option<MnoProbe> = None;
        for probe in probes {
            match &mut merged {
                None => merged = Some(probe),
                Some(m) => m.absorb(probe),
            }
        }
        return merged.expect("at least one shard");
    }
    par::tree_reduce(probes, |mut left, right| {
        left.absorb(right);
        left
    })
    .expect("at least one shard")
}

/// Internal helper assembling the device population.
struct PopulationBuilder<'a> {
    cfg: &'a MnoScenarioConfig,
    tacdb: &'a TacDatabase,
    rng: &'a mut SubstreamRng,
    next_msin: HashMap<u32, u64>,
    specs: Vec<DeviceSpec>,
    truth: Vec<Vertical>,
}

impl PopulationBuilder<'_> {
    fn build(&mut self) {
        let n = self.cfg.devices;
        let count = |f: f64| (n as f64 * f).round() as usize;
        self.smartphones_native(count(0.270), UK);
        self.smartphones_native(count(0.250), Plmn::of(234, 31)); // MVNO
        self.smartphones_outbound(count(0.010));
        self.smartphones_inbound(count(0.080));
        self.feature_phones(count(0.045), UK);
        self.feature_phones(count(0.025), Plmn::of(234, 32));
        self.feature_phones_inbound(count(0.005));
        self.meters_inbound(count(0.125));
        self.cars_inbound(count(0.020));
        self.trackers_inbound(count(0.025));
        self.other_m2m_inbound(count(0.034));
        self.meters_native_smip(count(0.040));
        self.sensors_native(count(0.021));
        self.alarms_voice_only(count(0.040));
    }

    fn alloc_imsi(&mut self, plmn: Plmn, base: u64) -> Imsi {
        let cursor = self.next_msin.entry(plmn.packed()).or_insert(0);
        let msin = base + *cursor;
        *cursor += 1;
        Imsi::new(plmn, msin).expect("MSIN within bounds")
    }

    fn tac_where<F: Fn(&wtr_model::tacdb::TacInfo) -> bool>(&mut self, pred: F) -> Tac {
        let mut tacs: Vec<Tac> = self
            .tacdb
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.tac)
            .collect();
        tacs.sort();
        assert!(!tacs.is_empty(), "no TAC matches predicate");
        tacs[self.rng.index(tacs.len())]
    }

    fn push(&mut self, spec: DeviceSpec, vertical: Vertical) {
        self.specs.push(spec);
        self.truth.push(vertical);
    }

    fn next_index(&self) -> u64 {
        self.specs.len() as u64
    }

    /// Base spec with UK-local single-leg itinerary.
    #[allow(clippy::too_many_arguments)]
    fn base_spec(
        &mut self,
        imsi: Imsi,
        tac: Tac,
        vertical: Vertical,
        caps: RatSet,
        apns: Vec<Apn>,
        traffic: TrafficProfile,
        presence: PresenceModel,
        mobility: MobilityModel,
        country: &str,
    ) -> DeviceSpec {
        let index = self.next_index();
        DeviceSpec {
            index,
            imsi,
            imei: Imei::new(tac, (index % 1_000_000) as u32).expect("valid IMEI"),
            vertical,
            radio_caps: caps,
            apns,
            data_enabled: true,
            voice_enabled: true,
            traffic,
            presence,
            itinerary: vec![ItineraryLeg {
                from_day: 0,
                country_iso: country.to_owned(),
                mobility,
            }],
            switch_propensity: 0.0,
            event_failure_prob: 0.005,
            sticky_failure: None,
        }
    }

    fn smartphones_native(&mut self, count: usize, sim_plmn: Plmn) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(sim_plmn, 1_000_000_000);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::Smartphone);
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            // A slice of phone users never touches the data plane (part
            // of the paper's ~21% APN-less devices).
            let data_enabled = self.rng.chance(0.88);
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::Smartphone,
                caps,
                if data_enabled {
                    vec![
                        "payandgo.albion.gb".parse().unwrap(),
                        "internet.albion.gb".parse().unwrap(),
                    ]
                } else {
                    Vec::new()
                },
                TrafficProfile::for_vertical(Vertical::Smartphone),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.90,
                },
                MobilityModel::local_area_in(&gb, 0.15, seed),
                "GB",
            );
            spec.data_enabled = data_enabled;
            self.push(spec, Vertical::Smartphone);
        }
    }

    fn smartphones_outbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(UK, 1_500_000_000);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::Smartphone);
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::Smartphone,
                caps,
                vec!["internet.albion.gb".parse().unwrap()],
                TrafficProfile::for_vertical(Vertical::Smartphone),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.90,
                },
                MobilityModel::local_area_in(&gb, 0.15, seed),
                "GB",
            );
            // A holiday abroad mid-window (→ H:A catalog rows via CDR/xDR
            // clearing).
            let away_start = 5 + self.rng.index(10) as u32;
            let away_len = 3 + self.rng.index(5) as u32;
            let dest = if self.rng.chance(0.6) { "ES" } else { "FR" };
            spec.itinerary = vec![
                ItineraryLeg {
                    from_day: 0,
                    country_iso: "GB".into(),
                    mobility: MobilityModel::local_area_in(&gb, 0.15, seed),
                },
                ItineraryLeg {
                    from_day: away_start,
                    country_iso: dest.into(),
                    mobility: MobilityModel::local_area_in(
                        &Universe::geometry(dest),
                        0.1,
                        seed ^ 1,
                    ),
                },
                ItineraryLeg {
                    from_day: (away_start + away_len).min(self.cfg.days),
                    country_iso: "GB".into(),
                    mobility: MobilityModel::local_area_in(&gb, 0.15, seed ^ 2),
                },
            ];
            // Clamping the return leg to the window end can reorder legs
            // when the holiday starts after the window closes; those legs
            // are unreachable (every simulated day is < `days`), so the
            // stable sort restores the spec's sorted-itinerary invariant
            // without changing which leg any day resolves to.
            spec.itinerary.sort_by_key(|leg| leg.from_day);
            self.push(spec, Vertical::Smartphone);
        }
    }

    fn smartphones_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        // Tourists' home countries: broad Zipf — top-3 ≈ 17% of smart
        // inbound (Fig. 5-bottom).
        let homes: Vec<&Country> = Country::all().iter().filter(|c| c.iso != "GB").collect();
        let weights = SubstreamRng::zipf_weights(homes.len(), 0.9);
        for _ in 0..count {
            let home = homes[self.rng.weighted_index(&weights)];
            let home_plmn = Plmn::new(
                home.primary_mcc(),
                wtr_model::ids::Mnc::new2(1).expect("valid"),
            );
            let imsi = self.alloc_imsi(home_plmn, 2_000_000_000);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::Smartphone);
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            // Short stays: median ≈ 2 active days (Fig. 7-left).
            let arrival = self.rng.index(self.cfg.days as usize) as u32;
            let stay = 1 + self.rng.index(4) as u32;
            // Bill shock: inbound tourists throttle data (§6.2).
            let traffic = TrafficProfile::for_vertical(Vertical::Smartphone).with_data_factor(0.25);
            let radius = 0.03 + self.rng.range_f64(0.0, 0.5);
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::Smartphone,
                caps,
                vec!["internet.roaming".parse().unwrap()],
                traffic,
                PresenceModel {
                    first_day: arrival,
                    last_day: (arrival + stay).min(self.cfg.days),
                    daily_active_prob: 0.95,
                },
                MobilityModel::local_area_in(&gb, radius, seed),
                "GB",
            );
            spec.traffic.volume.median_bytes *= 0.3;
            self.push(spec, Vertical::Smartphone);
        }
    }

    fn feature_phones(&mut self, count: usize, sim_plmn: Plmn) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(sim_plmn, 3_000_000_000);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::FeaturePhone);
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            // §6.1: 56.8% of feature phones never use data.
            let data_enabled = self.rng.chance(0.43);
            let voice_enabled = self.rng.chance(0.927);
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::FeaturePhone,
                caps,
                if data_enabled {
                    vec!["wap.albion.gb".parse().unwrap()]
                } else {
                    Vec::new()
                },
                TrafficProfile::for_vertical(Vertical::FeaturePhone),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.85,
                },
                MobilityModel::local_area_in(&gb, 0.08, seed),
                "GB",
            );
            spec.data_enabled = data_enabled;
            spec.voice_enabled = voice_enabled;
            self.push(spec, Vertical::FeaturePhone);
        }
    }

    fn feature_phones_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        let homes = ["IE", "PL", "RO", "PT", "IN", "PK"];
        for _ in 0..count {
            let iso = homes[self.rng.index(homes.len())];
            let home = Country::by_iso(iso).expect("known");
            let home_plmn = Plmn::new(
                home.primary_mcc(),
                wtr_model::ids::Mnc::new2(1).expect("valid"),
            );
            let imsi = self.alloc_imsi(home_plmn, 3_500_000_000);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::FeaturePhone);
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            let arrival = self.rng.index(self.cfg.days as usize) as u32;
            let stay = 2 + self.rng.index(6) as u32;
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::FeaturePhone,
                caps,
                Vec::new(),
                TrafficProfile::for_vertical(Vertical::FeaturePhone),
                PresenceModel {
                    first_day: arrival,
                    last_day: (arrival + stay).min(self.cfg.days),
                    daily_active_prob: 0.9,
                },
                MobilityModel::local_area_in(&gb, 0.1, seed),
                "GB",
            );
            spec.data_enabled = false;
            self.push(spec, Vertical::FeaturePhone);
        }
    }

    /// SMIP-roaming meters: NL global IoT SIMs, energy-company APNs,
    /// 2G-only Gemalto/Telit modules (§4.4, §7.1).
    fn meters_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        let energy_apns = [
            "smhp.centricaplc.com.mnc004.mcc204.gprs",
            "meters.elster.co.uk.mnc004.mcc204.gprs",
            "telemetry.rwe.com.mnc004.mcc204.gprs",
            "ge.generalelectric.energy.mnc004.mcc204.gprs",
            "bglobal.metering.uk.mnc004.mcc204.gprs",
        ];
        for _ in 0..count {
            let imsi = self.alloc_imsi(well_known::NL_SMART_METER_HMNO, 5_000_000_000);
            let vendor = if self.rng.chance(0.6) {
                "Gemalto"
            } else {
                "Telit"
            };
            // §8 what-if: a configurable slice of meters ships with
            // NB-IoT radios instead of 2G ones.
            let wants_nbiot = self.rng.chance(self.cfg.nbiot_meter_fraction);
            let meter_rats = if wants_nbiot {
                RatSet::NBIOT_ONLY
            } else {
                RatSet::G2_ONLY
            };
            let tac = self.tac_where(|e| e.vendor == vendor && e.rats == meter_rats);
            let apn: Apn = energy_apns[self.rng.index(energy_apns.len())]
                .parse()
                .unwrap();
            let seed = self.rng.rng_seed();
            // Roaming meters: 10× native signaling (Fig. 11-right); ~35%
            // of devices see failures; visible ≈ 8–9 of 22 days (they hop
            // UK networks; thinned via daily_active).
            let failure_prone = self.rng.chance(0.35);
            let arrival = if self.rng.chance(0.7) {
                0
            } else {
                self.rng.index(self.cfg.days as usize) as u32
            };
            // Bimodal visibility: a flaky slice hops UK networks (rarely
            // on ours), the rest camp here most days. Reproduces both the
            // Fig. 7 inbound-m2m median (~9 days) and Fig. 11's "50%
            // active ≤5 days" tail.
            let daily_active = if self.rng.chance(0.45) { 0.14 } else { 0.60 };
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::SmartMeter,
                meter_rats,
                vec![apn],
                TrafficProfile::for_vertical(Vertical::SmartMeter).with_signaling_factor(3.5),
                PresenceModel {
                    first_day: arrival,
                    last_day: self.cfg.days,
                    daily_active_prob: daily_active,
                },
                MobilityModel::stationary_in(&gb, seed),
                "GB",
            );
            // §6.1: most M2M uses SMS-like voice; a quarter never uses
            // data (they keep their APN configured but the probe never
            // sees it — exactly the propagation problem of §4.3).
            spec.voice_enabled = self.rng.chance(0.80);
            spec.data_enabled = self.rng.chance(0.75);
            if !spec.data_enabled {
                spec.apns.clear();
            }
            spec.switch_propensity = 0.02;
            spec.event_failure_prob = if failure_prone { 0.05 } else { 0.0 };
            self.push(spec, Vertical::SmartMeter);
        }
    }

    fn cars_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(well_known::DE_HMNO, 5_000_000_000);
            let tac =
                self.tac_where(|e| e.vendor == "Sierra Wireless" && e.rats == RatSet::CONVENTIONAL);
            let seed = self.rng.rng_seed();
            let spec = {
                let mut s = self.base_spec(
                    imsi,
                    tac,
                    Vertical::ConnectedCar,
                    RatSet::CONVENTIONAL,
                    vec!["fleet.connectedcar.de.mnc002.mcc262.gprs".parse().unwrap()],
                    TrafficProfile::for_vertical(Vertical::ConnectedCar),
                    PresenceModel {
                        first_day: 0,
                        last_day: self.cfg.days,
                        daily_active_prob: 0.8,
                    },
                    MobilityModel::Waypoint {
                        geometry: gb,
                        leg_hours: 3,
                        seed,
                    },
                    "GB",
                );
                s.voice_enabled = self.rng.chance(0.3);
                s
            };
            self.push(spec, Vertical::ConnectedCar);
        }
    }

    fn trackers_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(well_known::SE_HMNO, 5_000_000_000);
            let tac = self.tac_where(|e| e.vendor == "Quectel" && e.rats == RatSet::G2_ONLY);
            let seed = self.rng.rng_seed();
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::AssetTracker,
                RatSet::G2_ONLY,
                vec!["asset.tracking.se.mnc001.mcc240.gprs".parse().unwrap()],
                TrafficProfile::for_vertical(Vertical::AssetTracker),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.70,
                },
                MobilityModel::Waypoint {
                    geometry: gb,
                    leg_hours: 8,
                    seed,
                },
                "GB",
            );
            spec.voice_enabled = self.rng.chance(0.80);
            spec.data_enabled = self.rng.chance(0.75);
            if !spec.data_enabled {
                spec.apns.clear();
            }
            self.push(spec, Vertical::AssetTracker);
        }
    }

    fn other_m2m_inbound(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        let homes = ["ES", "FR", "IT", "BE", "AT", "CH"];
        for i in 0..count {
            // Half from ES (Fig. 5 top-3), the rest long tail.
            let iso = if i % 2 == 0 {
                "ES"
            } else {
                homes[self.rng.index(homes.len())]
            };
            let home = Country::by_iso(iso).expect("known");
            let home_plmn = if iso == "ES" {
                well_known::ES_HMNO
            } else {
                Plmn::new(
                    home.primary_mcc(),
                    wtr_model::ids::Mnc::new2(1).expect("valid"),
                )
            };
            let imsi = self.alloc_imsi(home_plmn, 5_000_000_000);
            let tac = self.tac_where(|e| e.vendor == "u-blox" && e.rats == RatSet::G2_ONLY);
            let seed = self.rng.rng_seed();
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::PaymentTerminal,
                RatSet::G2_ONLY,
                vec!["pos.intelligent-m2m.net.mnc007.mcc214.gprs"
                    .parse()
                    .unwrap()],
                TrafficProfile::for_vertical(Vertical::PaymentTerminal),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.7,
                },
                MobilityModel::stationary_in(&gb, seed),
                "GB",
            );
            spec.voice_enabled = self.rng.chance(0.80);
            spec.data_enabled = self.rng.chance(0.85);
            if !spec.data_enabled {
                spec.apns.clear();
            }
            self.push(spec, Vertical::PaymentTerminal);
        }
    }

    /// SMIP-native meters: studied MNO's SIMs from the dedicated IMSI
    /// range; 2G+3G modules with 2/3 camping on 3G (§7.1); long-lasting
    /// connectivity with an ongoing-deployment arrival tail (Fig. 11).
    fn meters_native_smip(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(UK, SMIP_MSIN_BASE);
            let vendor = if self.rng.chance(0.5) {
                "Gemalto"
            } else {
                "Telit"
            };
            let tac = self.tac_where(|e| e.vendor == vendor && e.rats == RatSet::G2_G3);
            let seed = self.rng.rng_seed();
            // Ongoing deployment: ~80% present from day 0, the rest arrive
            // during the window (Fig. 11-left cohort effect).
            let arrival = if self.rng.chance(0.8) {
                0
            } else {
                1 + self.rng.index((self.cfg.days - 1) as usize) as u32
            };
            // §7.1: 2/3 of native meters camp on 3G only; the rest use
            // both 2G and 3G (modeled with tiny position jitter across
            // cells with patchy 3G, so both RATs genuinely get used).
            let only_3g = self.rng.chance(2.0 / 3.0);
            let caps = if only_3g {
                RatSet::only(wtr_model::rat::Rat::G3)
            } else {
                RatSet::G2_G3
            };
            let mobility = if only_3g {
                MobilityModel::stationary_in(&gb, seed)
            } else {
                MobilityModel::local_area_in(&gb, 0.15, seed)
            };
            let failure_prone = self.rng.chance(0.12);
            let mut traffic = TrafficProfile::for_vertical(Vertical::SmartMeter)
                .with_signaling_factor(0.35)
                .with_data_factor(2.0);
            // Mains-powered meters report like clockwork: little
            // per-device rate spread, so long-lived devices really are
            // active every single day (Fig. 11-left's 73%/83%).
            traffic.per_device_sigma = 0.2;
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::SmartMeter,
                caps,
                vec!["smartmeter.smip.albion.gb".parse().unwrap()],
                traffic,
                PresenceModel {
                    first_day: arrival,
                    last_day: self.cfg.days,
                    daily_active_prob: 1.0,
                },
                mobility,
                "GB",
            );
            spec.voice_enabled = self.rng.chance(0.80);
            spec.event_failure_prob = if failure_prone { 0.03 } else { 0.0 };
            self.push(spec, Vertical::SmartMeter);
        }
    }

    fn sensors_native(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for _ in 0..count {
            let imsi = self.alloc_imsi(UK, 6_000_000_000);
            let only_2g = self.rng.chance(0.6);
            let tac = if only_2g {
                self.tac_where(|e| e.vendor == "Cinterion Labs" && e.rats == RatSet::G2_ONLY)
            } else {
                self.tac_where(|e| e.vendor == "Cinterion Labs" && e.rats == RatSet::G2_G3)
            };
            let caps = self.tacdb.get(tac).expect("allocated").rats;
            let seed = self.rng.rng_seed();
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::IndustrialSensor,
                caps,
                vec!["telemetry.industrial.gb".parse().unwrap()],
                TrafficProfile::for_vertical(Vertical::IndustrialSensor),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.8,
                },
                MobilityModel::stationary_in(&gb, seed),
                "GB",
            );
            spec.voice_enabled = self.rng.chance(0.80);
            spec.data_enabled = self.rng.chance(0.70);
            if !spec.data_enabled {
                spec.apns.clear();
            }
            self.push(spec, Vertical::IndustrialSensor);
        }
    }

    /// Voice-only alarms: no data ⇒ no APN ⇒ the classifier can only say
    /// `m2m-maybe` (§4.3's 4%). Hardware uses the wearable-class TACs so
    /// neither the smartphone-OS nor feature-phone rules fire, and no
    /// data-using M2M device shares the TAC.
    fn alarms_voice_only(&mut self, count: usize) {
        let gb = Universe::geometry("GB");
        for i in 0..count {
            // Mostly native alarm endpoints, a small inbound slice.
            let (plmn, base) = if i % 7 == 0 {
                (well_known::NL_SMART_METER_HMNO, 6_500_000_000)
            } else {
                (UK, 6_500_000_000)
            };
            let imsi = self.alloc_imsi(plmn, base);
            let tac = self.tac_where(|e| e.gsma_class == wtr_model::tacdb::GsmaClass::Wearable);
            let seed = self.rng.rng_seed();
            let mut spec = self.base_spec(
                imsi,
                tac,
                Vertical::SecurityAlarm,
                RatSet::G2_ONLY,
                Vec::new(),
                TrafficProfile::for_vertical(Vertical::SecurityAlarm),
                PresenceModel {
                    first_day: 0,
                    last_day: self.cfg.days,
                    daily_active_prob: 0.7,
                },
                MobilityModel::stationary_in(&gb, seed),
                "GB",
            );
            spec.data_enabled = false;
            self.push(spec, Vertical::SecurityAlarm);
        }
    }
}

/// Small extension: draw a fresh 64-bit seed from a substream.
trait RngSeed {
    fn rng_seed(&mut self) -> u64;
}

impl RngSeed for SubstreamRng {
    fn rng_seed(&mut self) -> u64 {
        use rand::RngCore;
        self.rng().next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MnoScenarioOutput {
        MnoScenario::new(MnoScenarioConfig {
            devices: 1_200,
            days: 8,
            seed: 11,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        })
        .run()
    }

    #[test]
    fn catalog_is_populated() {
        let out = small();
        assert!(
            out.catalog.device_count() > 900,
            "{}",
            out.catalog.device_count()
        );
        assert!(out.record_counts.0 > 0);
        assert!(out.record_counts.1 > 0);
        assert!(out.record_counts.2 > 0);
    }

    #[test]
    fn ground_truth_covers_population() {
        let out = small();
        // Sub-population fractions sum to ~0.99 of the requested size
        // (per-bucket rounding); every simulated device has a truth entry.
        let n = out.ground_truth.len();
        assert!((1_150..=1_210).contains(&n), "population size {n}");
        let m2m = out.ground_truth.values().filter(|v| v.is_m2m()).count();
        let frac = m2m as f64 / n as f64;
        assert!(
            (0.27..0.34).contains(&frac),
            "m2m ground-truth share {frac}"
        );
    }

    #[test]
    fn smip_native_devices_in_designated_range() {
        let out = small();
        let designated: Vec<_> = out
            .catalog
            .iter()
            .filter(|r| r.in_designated_range)
            .collect();
        assert!(!designated.is_empty());
        for row in designated {
            assert_eq!(row.sim_plmn, UK);
        }
    }

    #[test]
    fn inbound_roamers_present_with_foreign_sims() {
        let out = small();
        let inbound = out
            .catalog
            .iter()
            .filter(|r| r.label.is_international_inbound())
            .count();
        assert!(inbound > 0);
    }

    #[test]
    fn element_load_partitions_by_technology() {
        let out = small();
        assert_eq!(out.element_load.len(), 8);
        let mut total = wtr_probes::mno::ElementLoad::default();
        for day in &out.element_load {
            total.merge(*day);
        }
        // 2019-era population: 2G/3G machines keep the SGSN busy, phones
        // load the MME; voice exists, and both data cores carry sessions.
        assert!(total.mme > 0, "{total:?}");
        assert!(total.sgsn > 0, "{total:?}");
        assert!(total.msc > 0, "{total:?}");
        assert!(total.sgw > 0 && total.ggsn > 0, "{total:?}");
        // Signaling counters must reconcile with the probe's event count.
        assert_eq!(total.mme + total.sgsn, out.record_counts.0);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.catalog.len(), b.catalog.len());
        assert_eq!(a.record_counts, b.record_counts);
    }
}
