//! The M2M platform scenario (§3): the 11-day, four-HMNO global IoT SIM
//! population, observed by the HMNO-side 4G signaling probe.
//!
//! Calibration targets (all from §3.2–§3.3, checked in EXPERIMENTS.md):
//!
//! * HMNO device shares ES 52.3% / MX 42.2% / AR 4.7% / DE ≈0.8%;
//! * ES SIMs roam in ~76 countries; MX ≈90% at home; AR almost all home;
//!   DE (connected cars) few devices but many VMNOs;
//! * 40% of ES devices only ever fail 4G procedures;
//! * long-tailed records-per-device (mean ≈ 267 over 11 days, roaming
//!   median ≈ 10× native);
//! * VMNOs per roaming device: ~65% one, ~25% two, ~5% three or more;
//! * inter-VMNO switches: ~50% ≤2 total, ~20% ≥daily, ~3% extreme.

use crate::universe::Universe;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wtr_model::country::{Country, Region};
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_model::ids::{Imei, Plmn, Tac};
use wtr_model::operators::well_known;
use wtr_model::rat::RatSet;
use wtr_model::time::SimTime;
use wtr_model::vertical::Vertical;
use wtr_platform::platform::M2mPlatform;
use wtr_probes::m2m::M2mProbe;
use wtr_probes::records::M2mTransaction;
use wtr_radio::network::CoverageFaults;
use wtr_sim::behavior::{profile_matrix, BehaviorMatrix, BehaviorOptions};
use wtr_sim::device::{DeviceAgent, DeviceSpec, ItineraryLeg, PresenceModel};
use wtr_sim::events::ProcedureResult;
use wtr_sim::mobility::MobilityModel;
use wtr_sim::rng::SubstreamRng;
use wtr_sim::shard;
use wtr_sim::traffic::{DiurnalShape, TrafficProfile, VolumeDist};
use wtr_sim::world::RoamingWorld;

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct M2mScenarioConfig {
    /// Number of IoT SIMs (paper: 120 000; default 1/10 scale).
    pub devices: usize,
    /// Observation window in days (paper: 11).
    pub days: u32,
    /// Master seed.
    pub seed: u64,
    /// Fraction of 4G grid cells without coverage (drives 4G attach
    /// failures and RAT fallback).
    pub g4_hole_fraction: f64,
}

impl Default for M2mScenarioConfig {
    fn default() -> Self {
        M2mScenarioConfig {
            devices: 12_000,
            days: 11,
            seed: 0x524f414d, // "ROAM"
            g4_hole_fraction: 0.05,
        }
    }
}

/// Hidden per-device truth for validation and tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct M2mGroundTruth {
    /// Issuing HMNO.
    pub hmno: Plmn,
    /// Whether the device's itinerary ever leaves the HMNO country.
    pub roams: bool,
    /// Whether the device was provisioned to always fail (the §3.3 40%).
    pub sticky_failure: bool,
    /// Countries on the itinerary.
    pub countries: Vec<String>,
}

/// Scenario output: the probe's transaction log plus hidden truth.
#[derive(Debug, Clone)]
pub struct M2mScenarioOutput {
    /// The §3.1-schema transaction log, time-ordered.
    pub transactions: Vec<M2mTransaction>,
    /// Ground truth per anonymized device ID.
    pub ground_truth: BTreeMap<u64, M2mGroundTruth>,
    /// Total devices simulated.
    pub devices: usize,
    /// Window length.
    pub days: u32,
    /// Per-shard engine statistics in shard order, mirroring
    /// `MnoScenarioOutput::shard_stats` (see that field for the
    /// `peak_queue` sum-vs-max semantics).
    pub shard_stats: Vec<wtr_sim::engine::EngineStats>,
}

impl M2mScenarioOutput {
    /// Sum of the per-shard engine statistics ([`EngineStats::absorb`]:
    /// counters add, queue peaks keep both the sum and the per-shard
    /// max).
    ///
    /// [`EngineStats::absorb`]: wtr_sim::engine::EngineStats::absorb
    pub fn engine_stats(&self) -> wtr_sim::engine::EngineStats {
        let mut total = wtr_sim::engine::EngineStats::default();
        for s in &self.shard_stats {
            total.absorb(s);
        }
        total
    }
}

/// The §3 scenario builder/runner.
pub struct M2mScenario {
    config: M2mScenarioConfig,
    /// Per-vertical behavior overrides keyed by `Vertical::label()`,
    /// mirroring `MnoScenario`'s hook.
    behavior_overrides: BTreeMap<String, Arc<BehaviorMatrix>>,
}

/// Traffic profile of a platform IoT device: control-plane only (the probe
/// has no data/voice visibility anyway), frequent re-registrations.
fn platform_profile(signaling_per_day: f64, sigma: f64) -> TrafficProfile {
    TrafficProfile {
        signaling_per_day,
        per_device_sigma: sigma,
        data_sessions_per_day: 0.0,
        volume: VolumeDist {
            median_bytes: 0.0,
            sigma: 0.0,
            uplink_ratio: 0.5,
        },
        voice_per_day: 0.0,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Flat,
        reauth_fraction: 0.7,
    }
}

/// The platform IoT device class as a declarative [`BehaviorMatrix`]:
/// [`platform_profile`]'s rates compiled with data and voice planes
/// disabled — exactly what `DeviceAgent` compiles internally for a
/// platform spec with the same knobs. Exported so tooling can serialize
/// platform classes alongside `Universe::standard_behaviors`.
pub fn platform_behavior(
    signaling_per_day: f64,
    sigma: f64,
    opts: &BehaviorOptions,
) -> BehaviorMatrix {
    let opts = BehaviorOptions {
        data_enabled: false,
        voice_enabled: false,
        ..*opts
    };
    profile_matrix(&platform_profile(signaling_per_day, sigma), &opts)
}

impl M2mScenario {
    /// Creates a scenario.
    pub fn new(config: M2mScenarioConfig) -> Self {
        M2mScenario {
            config,
            behavior_overrides: BTreeMap::new(),
        }
    }

    /// Installs per-vertical behavior overrides (see
    /// `MnoScenario::with_behavior_overrides`).
    pub fn with_behavior_overrides(
        mut self,
        overrides: BTreeMap<String, Arc<BehaviorMatrix>>,
    ) -> Self {
        self.behavior_overrides = overrides;
        self
    }

    /// Builds the universe, simulates, and returns the captured dataset.
    pub fn run(&self) -> M2mScenarioOutput {
        let cfg = &self.config;
        let faults = CoverageFaults {
            hole_fraction_g2: 0.0,
            hole_fraction_g3: 0.01,
            hole_fraction_g4: cfg.g4_hole_fraction,
            hole_fraction_nbiot: cfg.g4_hole_fraction,
            salt: cfg.seed,
        };
        let mut universe = Universe::standard(faults);
        let mut rng = SubstreamRng::derive(cfg.seed, 0xA11);

        // Destination pools. The platform's commercial footprint for ES
        // SIMs spans 76 countries (§3.2) — the pool is capped there.
        let es_destinations: Vec<String> = destination_pool("ES").into_iter().take(76).collect();
        let latam_destinations: Vec<String> = Country::in_region(Region::LatinAmerica)
            .filter(|c| c.iso != "MX" && c.iso != "AR")
            .map(|c| c.iso.to_owned())
            .collect();
        let eu_destinations: Vec<String> = Country::in_region(Region::Europe)
            .filter(|c| c.iso != "DE")
            .map(|c| c.iso.to_owned())
            .collect();

        let mut specs: Vec<DeviceSpec> = Vec::with_capacity(cfg.devices);
        let mut truths: Vec<M2mGroundTruth> = Vec::with_capacity(cfg.devices);
        for index in 0..cfg.devices as u64 {
            let hmno_pick = rng.weighted_index(&[0.523, 0.008, 0.422, 0.047]);
            let (hmno, home_iso) = match hmno_pick {
                0 => (well_known::ES_HMNO, "ES"),
                1 => (well_known::DE_HMNO, "DE"),
                2 => (well_known::MX_HMNO, "MX"),
                _ => (well_known::AR_HMNO, "AR"),
            };
            let provision = universe
                .platform
                .provision(hmno)
                .expect("HMNO is a platform member");

            let (spec, truth) = match hmno_pick {
                0 => self.spanish_device(
                    index,
                    provision.imsi.plmn(),
                    provision.imsi.msin(),
                    home_iso,
                    &es_destinations,
                    &mut rng,
                ),
                1 => self.german_car(
                    index,
                    provision.imsi.plmn(),
                    provision.imsi.msin(),
                    home_iso,
                    &eu_destinations,
                    &mut rng,
                ),
                2 => self.latam_device(
                    index,
                    provision.imsi.plmn(),
                    provision.imsi.msin(),
                    home_iso,
                    &latam_destinations,
                    0.10,
                    &mut rng,
                ),
                _ => self.latam_device(
                    index,
                    provision.imsi.plmn(),
                    provision.imsi.msin(),
                    home_iso,
                    &latam_destinations,
                    0.03,
                    &mut rng,
                ),
            };
            specs.push(spec);
            truths.push(truth);
        }

        // Attach a shard-local probe to each shard's world and run. Each
        // shard observes a disjoint slice of the device population, so
        // concatenating the per-shard transaction logs in shard order and
        // stable-sorting on (time, device) reproduces the serial log
        // exactly: any ties within one (time, device) key come from a
        // single device, whose own event order every shard preserves.
        let watched: Vec<wtr_model::ids::ImsiRange> = universe
            .platform
            .hmnos()
            .iter()
            .map(|h| M2mPlatform::m2m_range(*h))
            .collect();
        let horizon = SimTime::from_secs(cfg.days as u64 * 86_400);
        let mut ground_truth = BTreeMap::new();
        let agents: Vec<DeviceAgent> = specs
            .into_iter()
            .zip(truths)
            .map(|(spec, truth)| {
                let anon = anonymize_u64(AnonKey::FIXED, spec.imsi.packed());
                ground_truth.insert(anon, truth);
                match self.behavior_overrides.get(spec.vertical.label()) {
                    Some(matrix) => DeviceAgent::with_behavior(spec, Arc::clone(matrix), cfg.seed)
                        .expect("platform specs are valid"),
                    None => DeviceAgent::new(spec, cfg.seed),
                }
            })
            .collect();
        let directory = universe.directory;
        let policy = universe.policy;
        let results = shard::run_sharded(horizon, shard::shard_count(None), agents, |_shard| {
            let probe = M2mProbe::new(watched.clone(), AnonKey::FIXED);
            RoamingWorld::new(directory.clone(), Box::new(policy.clone()), probe, cfg.seed)
        });
        let mut transactions: Vec<M2mTransaction> = Vec::new();
        let mut shard_stats = Vec::with_capacity(results.len());
        for (world, stats) in results {
            transactions.extend(world.sink.transactions);
            shard_stats.push(stats);
        }
        transactions.sort_by_key(|t| (t.time, t.device));
        M2mScenarioOutput {
            transactions,
            ground_truth,
            devices: cfg.devices,
            days: cfg.days,
            shard_stats,
        }
    }

    /// ES devices: 18% native, 82% roaming across a 76-country Zipf; 40%
    /// sticky-failing; a small extreme-switching population.
    #[allow(clippy::too_many_arguments)]
    fn spanish_device(
        &self,
        index: u64,
        hmno: Plmn,
        msin: u64,
        home_iso: &str,
        destinations: &[String],
        rng: &mut SubstreamRng,
    ) -> (DeviceSpec, M2mGroundTruth) {
        let roams = rng.chance(0.82);
        let sticky = rng.chance(0.40);
        // Mobility cohorts couple footprint with switching (Fig. 3-center
        // and Fig. 3-right are views of the same population): single-VMNO
        // devices neither travel nor reselect; frequent switchers travel.
        let (n_countries, switch_propensity) = if !roams {
            (1, 0.0)
        } else {
            match rng.weighted_index(&[0.50, 0.40, 0.08, 0.02]) {
                0 => (1, 0.0),
                1 => (1, 0.008),
                2 => (2, 0.09),
                _ => (1 + rng.index(3), 0.9),
            }
        };
        let countries = if roams {
            let n = if sticky && rng.chance(0.05) {
                // A rare misprovisioned tail hunts across many countries
                // (max attempted VMNOs ≈ 19 in the paper).
                6 + rng.index(3)
            } else {
                n_countries
            };
            pick_countries(destinations, n, rng)
        } else {
            vec![home_iso.to_owned()]
        };
        // Roaming devices re-register ~10× more than native ones (§3.2).
        let profile = if roams {
            platform_profile(17.0, 1.0)
        } else {
            platform_profile(1.4, 0.8)
        };
        let spec = self.spec(
            index,
            hmno,
            msin,
            &countries,
            profile,
            switch_propensity,
            sticky.then(|| sample_sticky_result(rng)),
            rng,
        );
        let truth = M2mGroundTruth {
            hmno,
            roams,
            sticky_failure: sticky,
            countries,
        };
        (spec, truth)
    }

    /// DE devices: ~1k connected cars with high multi-country mobility.
    #[allow(clippy::too_many_arguments)]
    fn german_car(
        &self,
        index: u64,
        hmno: Plmn,
        msin: u64,
        home_iso: &str,
        destinations: &[String],
        rng: &mut SubstreamRng,
    ) -> (DeviceSpec, M2mGroundTruth) {
        let mut countries = vec![home_iso.to_owned()];
        countries.extend(pick_countries(destinations, 1 + rng.index(4), rng));
        let spec = self.spec(
            index,
            hmno,
            msin,
            &countries,
            platform_profile(20.0, 0.9),
            0.08,
            None,
            rng,
        );
        let truth = M2mGroundTruth {
            hmno,
            roams: true,
            sticky_failure: false,
            countries,
        };
        (spec, truth)
    }

    /// MX/AR devices: mostly at home (regional roaming restrictions).
    #[allow(clippy::too_many_arguments)]
    fn latam_device(
        &self,
        index: u64,
        hmno: Plmn,
        msin: u64,
        home_iso: &str,
        destinations: &[String],
        roam_prob: f64,
        rng: &mut SubstreamRng,
    ) -> (DeviceSpec, M2mGroundTruth) {
        let roams = rng.chance(roam_prob);
        let countries = if roams {
            pick_countries(destinations, 1 + rng.index(2), rng)
        } else {
            vec![home_iso.to_owned()]
        };
        let profile = if roams {
            platform_profile(12.0, 0.9)
        } else {
            platform_profile(2.5, 0.8)
        };
        let spec = self.spec(index, hmno, msin, &countries, profile, 0.0, None, rng);
        let truth = M2mGroundTruth {
            hmno,
            roams,
            sticky_failure: false,
            countries,
        };
        (spec, truth)
    }

    #[allow(clippy::too_many_arguments)]
    fn spec(
        &self,
        index: u64,
        hmno: Plmn,
        msin: u64,
        countries: &[String],
        traffic: TrafficProfile,
        switch_propensity: f64,
        sticky_failure: Option<ProcedureResult>,
        rng: &mut SubstreamRng,
    ) -> DeviceSpec {
        let days = self.config.days;
        let itinerary = build_itinerary(countries, days, index);
        let imsi = wtr_model::ids::Imsi::new(hmno, msin).expect("platform MSINs valid");
        let tac = Tac::new(35_000_000 + (index % 28) as u32 / 4 * 10_000 + index as u32 % 4)
            .expect("valid module TAC");
        DeviceSpec {
            index,
            imsi,
            imei: Imei::new(tac, (index % 1_000_000) as u32).expect("valid IMEI"),
            vertical: Vertical::IndustrialSensor,
            radio_caps: RatSet::CONVENTIONAL,
            apns: Vec::new(),
            data_enabled: false,
            voice_enabled: false,
            traffic,
            presence: PresenceModel {
                first_day: 0,
                last_day: days,
                daily_active_prob: if rng.chance(0.9) { 0.95 } else { 0.6 },
            },
            itinerary,
            switch_propensity,
            event_failure_prob: 0.01,
            sticky_failure,
        }
    }
}

/// Ordered destination pool for a home country: every other country,
/// nearest regions first (deterministic), so Zipf weighting concentrates
/// devices in a handful of countries as Fig. 2 shows.
fn destination_pool(home_iso: &str) -> Vec<String> {
    let mut pool: Vec<&Country> = Country::all()
        .iter()
        .filter(|c| c.iso != home_iso)
        .collect();
    // Europe first (the platform's dominant footprint), then the rest in
    // registry order.
    pool.sort_by_key(|c| match c.region {
        Region::Europe => 0,
        Region::LatinAmerica => 1,
        Region::NorthAmerica => 2,
        Region::AsiaPacific => 3,
        Region::MiddleEast => 4,
        Region::Africa => 5,
    });
    pool.into_iter().map(|c| c.iso.to_owned()).collect()
}

/// Draws `n` distinct countries from `pool` with Zipf(1.05) popularity.
fn pick_countries(pool: &[String], n: usize, rng: &mut SubstreamRng) -> Vec<String> {
    let weights = SubstreamRng::zipf_weights(pool.len(), 1.25);
    let mut picked: Vec<String> = Vec::new();
    let mut guard = 0;
    while picked.len() < n.min(pool.len()) && guard < 1_000 {
        guard += 1;
        let idx = rng.weighted_index(&weights);
        let iso = &pool[idx];
        if !picked.contains(iso) {
            picked.push(iso.clone());
        }
    }
    picked
}

/// Splits the window evenly across the itinerary countries.
fn build_itinerary(countries: &[String], days: u32, seed: u64) -> Vec<ItineraryLeg> {
    let n = countries.len().max(1) as u32;
    let span = (days / n).max(1);
    countries
        .iter()
        .enumerate()
        .map(|(i, iso)| {
            let geometry = Universe::geometry(iso);
            ItineraryLeg {
                from_day: i as u32 * span,
                country_iso: iso.clone(),
                mobility: MobilityModel::stationary_in(&geometry, seed.wrapping_add(i as u64)),
            }
        })
        .collect()
}

fn sample_sticky_result(rng: &mut SubstreamRng) -> ProcedureResult {
    match rng.weighted_index(&[0.5, 0.3, 0.2]) {
        0 => ProcedureResult::RoamingNotAllowed,
        1 => ProcedureResult::UnknownSubscription,
        _ => ProcedureResult::FeatureUnsupported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> M2mScenarioOutput {
        M2mScenario::new(M2mScenarioConfig {
            devices: 600,
            days: 5,
            seed: 7,
            g4_hole_fraction: 0.05,
        })
        .run()
    }

    #[test]
    fn produces_transactions_for_most_devices() {
        let out = small();
        assert!(!out.transactions.is_empty());
        let devices: std::collections::HashSet<u64> =
            out.transactions.iter().map(|t| t.device).collect();
        // Most devices should surface in the 4G log (some 2G/3G-fallback
        // days are invisible, as in the paper).
        assert!(
            devices.len() > out.devices / 2,
            "{} of {}",
            devices.len(),
            out.devices
        );
    }

    #[test]
    fn hmno_shares_close_to_paper() {
        let out = small();
        let mut by_hmno: BTreeMap<u16, usize> = BTreeMap::new();
        for t in &out.ground_truth {
            *by_hmno.entry(t.1.hmno.mcc.value()).or_insert(0) += 1;
        }
        let total = out.ground_truth.len() as f64;
        let es = by_hmno[&214] as f64 / total;
        let mx = by_hmno[&334] as f64 / total;
        assert!((0.45..0.60).contains(&es), "ES share {es}");
        assert!((0.35..0.50).contains(&mx), "MX share {mx}");
    }

    #[test]
    fn transactions_time_ordered() {
        let out = small();
        assert!(out.transactions.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.transactions.len(), b.transactions.len());
        assert_eq!(a.transactions.first(), b.transactions.first());
        assert_eq!(a.transactions.last(), b.transactions.last());
    }

    #[test]
    fn sticky_devices_never_succeed() {
        let out = small();
        for (device, truth) in &out.ground_truth {
            if truth.sticky_failure {
                assert!(
                    out.transactions
                        .iter()
                        .filter(|t| t.device == *device)
                        .all(|t| !t.result.is_ok()),
                    "sticky device {device} has a successful transaction"
                );
            }
        }
    }

    #[test]
    fn mx_devices_mostly_at_home() {
        let out = small();
        let (mut home, mut total) = (0usize, 0usize);
        for truth in out.ground_truth.values() {
            if truth.hmno == well_known::MX_HMNO {
                total += 1;
                if !truth.roams {
                    home += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = home as f64 / total as f64;
        assert!(frac > 0.8, "MX home fraction {frac}");
    }
}
