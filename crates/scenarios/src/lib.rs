//! # wtr-scenarios — calibrated reproductions of the paper's two datasets
//!
//! The paper's datasets are NDA-covered operator data; this crate builds
//! their closest synthetic equivalents by *simulating the populations* the
//! paper describes and collecting them through the real probe pipeline:
//!
//! * [`m2m`] — the **M2M platform scenario** (§3): ~120k global IoT SIMs
//!   (scaled) from four HMNOs (ES/DE/MX/AR) roaming world-wide over 11
//!   days, observed by the HMNO-side 4G signaling probe.
//! * [`mno`] — the **visited-MNO scenario** (§4–§7): the full device
//!   population of one UK operator over 22 days — native users, MVNO
//!   users, inbound and outbound roamers, smart meters (SMIP native +
//!   roaming), connected cars — observed by the MNO probe into the daily
//!   devices-catalog.
//!
//! Every population parameter is calibrated to a number the paper reports;
//! the calibration table lives in `EXPERIMENTS.md`. Scenarios are
//! deterministic in their seed and **scale-invariant by design**: all
//! reported quantities are shares and distributions, so running at 1/100
//! of paper scale preserves every shape (a property the test suite
//! checks).
//!
//! The [`universe`] module builds the shared world: operator registry,
//! country geometries, radio networks, agreement graph and steering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod m2m;
pub mod mno;
pub mod universe;

pub use m2m::{M2mScenario, M2mScenarioConfig, M2mScenarioOutput};
pub use mno::{MnoScenario, MnoScenarioConfig, MnoScenarioOutput};
pub use universe::Universe;
